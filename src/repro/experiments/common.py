"""Shared harness utilities: dataset/engine cache, report rendering,
ratio math.

Every experiment returns a :class:`Report` (title, table, notes) so the
CLI (``python -m repro.experiments``) and the pytest benchmarks print
identical artifacts.  Dataset sizes scale with the ``REPRO_SCALE``
environment variable (default 1.0 = seconds-per-experiment on a laptop;
raise it to stress closer to paper scale).
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.engine import KeywordSearchEngine
from repro.core.params import SearchParams
from repro.datasets import (
    DblpConfig,
    ImdbConfig,
    PatentsConfig,
    make_dblp,
    make_imdb,
    make_patents,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.metrics import measure_at_last_relevant
from repro.workload.relevance import relevant_signatures

__all__ = [
    "Report",
    "Bench",
    "repro_scale",
    "build_bench",
    "run_measured",
    "geomean",
    "safe_ratio",
    "fmt",
]


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclass
class Report:
    """A rendered experiment artifact: one table plus notes."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        out = [f"== {self.experiment}: {self.title} ==", line(self.headers)]
        out.append("  ".join("-" * w for w in widths))
        out.extend(line(row) for row in self.rows)
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())


# ----------------------------------------------------------------------
# numbers
# ----------------------------------------------------------------------
def fmt(value, digits: int = 2) -> str:
    """Compact numeric formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.{digits}f}"
    return str(value)


def geomean(values: Sequence[float]) -> Optional[float]:
    """Geometric mean — the right average for per-query time ratios."""
    cleaned = [v for v in values if v is not None and v > 0]
    if not cleaned:
        return None
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def safe_ratio(numerator: Optional[float], denominator: Optional[float]) -> Optional[float]:
    """Ratio guarded against missing/zero denominators; zero-cost
    measurements are clamped to one pop/tick so early hits do not yield
    infinite ratios."""
    if numerator is None or denominator is None:
        return None
    return max(numerator, 1e-9) / max(denominator, 1e-9)


# ----------------------------------------------------------------------
# datasets and engines
# ----------------------------------------------------------------------
def repro_scale() -> float:
    """Global size multiplier from the REPRO_SCALE env var."""
    try:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return scale if scale > 0 else 1.0


@dataclass
class Bench:
    """One dataset prepared for experiments."""

    name: str
    db: object
    engine: KeywordSearchEngine
    generator: WorkloadGenerator
    build_seconds: float


_BENCH_CACHE: dict[tuple[str, float], Bench] = {}

_MAKERS = {
    "dblp": (make_dblp, DblpConfig()),
    "imdb": (make_imdb, ImdbConfig()),
    "patents": (make_patents, PatentsConfig()),
}


def build_bench(name: str, scale: float = 1.0) -> Bench:
    """Build (or fetch the cached) dataset+engine+workload-generator.

    ``scale`` multiplies the dataset's default entity counts, further
    multiplied by ``REPRO_SCALE``.
    """
    try:
        maker, config = _MAKERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(_MAKERS)}"
        ) from None
    effective = scale * repro_scale()
    key = (name, effective)
    cached = _BENCH_CACHE.get(key)
    if cached is not None:
        return cached
    start = time.perf_counter()
    db = maker(config.scaled(effective))
    engine = KeywordSearchEngine.from_database(db)
    generator = WorkloadGenerator(db, engine.graph, engine.index)
    bench = Bench(
        name=name,
        db=db,
        engine=engine,
        generator=generator,
        build_seconds=time.perf_counter() - start,
    )
    _BENCH_CACHE[key] = bench
    return bench


# ----------------------------------------------------------------------
# measured runs
# ----------------------------------------------------------------------
def run_measured(
    bench: Bench,
    keywords: Sequence[str],
    algorithms: Sequence[str],
    *,
    result_size: int,
    params: Optional[SearchParams] = None,
    nth: int = 10,
):
    """Run the given algorithms on one query; measure each at the last
    (or ``nth``) relevant answer.

    Returns ``(relevant_count, {algorithm: MeasurementPoint | None})``.
    """
    engine = bench.engine
    _, keyword_sets = engine.resolve(list(keywords))
    relevant = relevant_signatures(
        engine.graph,
        keyword_sets,
        max_tree_size=result_size,
        scorer=engine.scorer,
    )
    if not relevant:
        return 0, {}
    points = {}
    for algorithm in algorithms:
        result = engine.search(list(keywords), algorithm=algorithm, params=params)
        points[algorithm] = measure_at_last_relevant(result, relevant, nth=nth)
    return len(relevant), points


def workload_rng(seed: int) -> random.Random:
    """Deterministic per-experiment RNG."""
    return random.Random(seed)
