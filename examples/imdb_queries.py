"""IMDB-style session: the "Keanu Matrix Thomas" query shape (IQ1).

The paper's IMDB queries connect rare actor names to frequent title
words through ``acts`` link tuples.  This example also demonstrates the
Sparse baseline on the same query, reproducing the paper's Section 5.2
comparison setup (all join columns indexed, CNs up to the relevant
answer size).

Run:  python examples/imdb_queries.py
"""

import random
import time

from repro import KeywordSearchEngine
from repro.datasets import ImdbConfig, make_imdb
from repro.render import render_tree
from repro.sparse import SparseSearch
from repro.workload import WorkloadGenerator


def main() -> None:
    db = make_imdb(ImdbConfig())
    engine = KeywordSearchEngine.from_database(db)
    print(f"synthetic IMDB: {db.total_rows()} tuples -> {engine.graph}")
    print()

    generator = WorkloadGenerator(db, engine.graph, engine.index)
    rng = random.Random(1999)
    # IQ1 profile: rare person, medium word, frequent word; answer size 3.
    query = generator.sample_query(
        rng, n_keywords=3, result_size=3, band_combo=("T", "M", "L")
    )
    keywords = list(query.keywords)
    print(f"query {keywords} origins={query.origin_sizes}")
    print()

    for algorithm in ("bidirectional", "si-backward", "mi-backward"):
        start = time.perf_counter()
        result = engine.search(keywords, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        print(
            f"{algorithm:<13} answers={len(result.answers):<3} "
            f"explored={result.stats.nodes_explored:<6} time={elapsed:.3f}s"
        )
    print()

    result = engine.search(keywords)
    if result.answers:
        print("best answer:")
        print(render_tree(result.best().tree, engine.graph))
    print()

    # The Sparse baseline on the same query (paper's Sparse-LB setup).
    sparse = SparseSearch(db)
    start = time.perf_counter()
    outcome = sparse.lower_bound_time(keywords, relevant_size=3)
    elapsed = time.perf_counter() - start
    print(
        f"sparse: {outcome.num_networks} candidate networks, "
        f"{len(outcome.results)} joining trees, {elapsed:.3f}s"
    )
    for network in outcome.networks[:5]:
        print(f"  CN: {network.describe()}")


if __name__ == "__main__":
    main()
