"""ServiceMetrics: percentile math, counters, export shape."""

import json
import threading

import pytest

from repro.service.metrics import ServiceMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50.0) is None

    def test_single_sample(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 100.0) == 7.0

    def test_interpolation_matches_numpy(self):
        np = pytest.importorskip("numpy")
        samples = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestServiceMetrics:
    def test_export_shape_is_json_serializable(self):
        metrics = ServiceMetrics()
        metrics.record_request("bidirectional", 0.010, cached=False)
        metrics.record_request("bidirectional", 0.030, cached=False)
        metrics.record_request("bidirectional", 0.0001, cached=True)
        metrics.record_error("si-backward", "KeywordNotFoundError")
        exported = metrics.export()
        json.dumps(exported)  # plain dict contract
        assert exported["requests_total"] == 4
        assert exported["errors_total"] == 1
        assert exported["errors"] == {"KeywordNotFoundError": 1}
        assert exported["cache_hits"] == 1 and exported["cache_misses"] == 2
        assert exported["cache_hit_rate"] == pytest.approx(1 / 3)
        bidi = exported["algorithms"]["bidirectional"]
        assert bidi["requests"] == 3
        # Cached responses stay out of the latency reservoir.
        assert bidi["latency_count"] == 2
        assert bidi["latency_mean"] == pytest.approx(0.020)
        assert bidi["latency_p50"] == pytest.approx(0.020)
        assert bidi["latency_p99"] == pytest.approx(0.030, rel=0.02)

    def test_cache_bypass_leaves_hit_rate_alone(self):
        metrics = ServiceMetrics()
        metrics.record_request("bidirectional", 0.010, cached=None)
        exported = metrics.export()
        assert exported["cache_hits"] == 0 and exported["cache_misses"] == 0
        assert exported["cache_hit_rate"] == 0.0
        # ... but the latency still counts: it was a real search.
        assert exported["algorithms"]["bidirectional"]["latency_count"] == 1

    def test_window_bounds_reservoir(self):
        metrics = ServiceMetrics(window=10)
        for i in range(100):
            metrics.record_request("bidirectional", float(i), cached=False)
        exported = metrics.export()["algorithms"]["bidirectional"]
        assert exported["requests"] == 100
        assert exported["latency_count"] == 10
        # Only the most recent 10 samples (90..99) remain.
        assert exported["latency_p50"] == pytest.approx(94.5)

    def test_reset(self):
        metrics = ServiceMetrics()
        metrics.record_request("bidirectional", 0.010, cached=False)
        metrics.reset()
        exported = metrics.export()
        assert exported["requests_total"] == 0
        assert exported["algorithms"] == {}

    def test_concurrent_recording(self):
        metrics = ServiceMetrics()

        def worker() -> None:
            for _ in range(250):
                metrics.record_request("bidirectional", 0.001, cached=False)
                metrics.record_error("mi-backward", "ValueError")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        exported = metrics.export()
        assert exported["requests_total"] == 8 * 250 * 2
        assert exported["errors"]["ValueError"] == 8 * 250
