"""Multi-Iterator Backward Expanding search (paper Section 3; BANKS-I).

The baseline algorithm of Bhalotia et al. (ICDE 2002), as described in
Section 3 of the paper: one single-source-shortest-path iterator per
keyword node, each traversing edges *in reverse*; the iterator whose
next frontier node is nearest to its origin is scheduled; a node settled
by at least one iterator of every keyword is the root of answer trees —
one per combination of origins — which pass the minimality filter and
are released through the Section 4.5 bound, exactly like the other
algorithms so the comparison isolates the search strategy.

This is the algorithm whose time/space degrade when a keyword matches
many nodes (many iterators) or the search meets a large fan-in hub (huge
frontiers) — the motivation for Bidirectional search.
"""

from __future__ import annotations

import itertools
from math import inf
from typing import Optional, Sequence

from repro.core.answer import SearchResult
from repro.core.driver import BaseSearch, nra_edge_bound
from repro.core.heaps import LazyMinHeap
from repro.core.params import SearchParams
from repro.core.scoring import Scorer
from repro.core.stats import SearchStats

__all__ = ["BackwardExpandingSearch", "ShortestPathIterator"]


class ShortestPathIterator:
    """Dijkstra from one origin over the reversed search graph.

    ``settled[v]`` is the final distance of the best path ``v -> origin``
    in forward direction; ``succ[v]`` the next hop on it.  Expansion
    stops at ``dmax`` hops from the origin.
    """

    def __init__(
        self, graph, origin: int, keyword_indices: tuple[int, ...], stats: SearchStats
    ) -> None:
        self.graph = graph
        self.origin = origin
        self.keyword_indices = keyword_indices
        self.settled: dict[int, float] = {}
        self.succ: dict[int, tuple[int, float]] = {}
        self._hops: dict[int, int] = {origin: 0}
        self._frontier = LazyMinHeap()
        self._frontier.push(origin, 0.0)
        self._stats = stats
        stats.touch()

    def peek(self) -> Optional[float]:
        """Distance of the next node to settle, or None when exhausted."""
        return self._frontier.peek_priority()

    def settle_next(self, dmax: int) -> Optional[int]:
        """Settle and return the nearest frontier node (one getnext() step)."""
        try:
            node, dist = self._frontier.pop()
        except IndexError:
            return None
        self.settled[node] = dist
        if self._hops[node] < dmax:
            for u, w, _ in self.graph.in_edges(node):
                self._stats.explore_edge()
                if u in self.settled:
                    continue
                nd = dist + w
                current = self._frontier.get_priority(u)
                if current is None:
                    self._stats.touch()
                elif nd >= current:
                    continue
                self.succ[u] = (node, w)
                self._hops[u] = self._hops[node] + 1
                self._frontier.push(u, nd)
        return node

    def path_to_origin(self, node: int) -> tuple[int, ...]:
        """The settled path ``node -> ... -> origin`` (forward direction)."""
        path = [node]
        while path[-1] != self.origin:
            nxt, _ = self.succ[path[-1]]
            path.append(nxt)
        return tuple(path)


class BackwardExpandingSearch(BaseSearch):
    """MI-Backward: the multi-iterator baseline."""

    algorithm = "mi-backward"

    def __init__(
        self,
        graph,
        keywords: Sequence[str],
        keyword_sets: Sequence[frozenset[int]],
        *,
        params: Optional[SearchParams] = None,
        scorer: Optional[Scorer] = None,
        token=None,
    ) -> None:
        super().__init__(
            graph, keywords, keyword_sets, params=params, scorer=scorer, token=token
        )
        # One iterator per *node* in S = union of the S_i; an origin
        # matching several keywords serves them all (Section 3).
        origin_keywords: dict[int, list[int]] = {}
        for i, nodes in enumerate(self.keyword_sets):
            for node in nodes:
                origin_keywords.setdefault(node, []).append(i)
        self._iterators = [
            ShortestPathIterator(graph, origin, tuple(indices), self.stats)
            for origin, indices in sorted(origin_keywords.items())
        ]
        # visited[v][i] -> iterators (by index) that settled v for keyword i.
        self._visited: dict[int, list[list[int]]] = {}
        self._best_dist: dict[int, list[float]] = {}
        self._combos_emitted: dict[int, int] = {}
        self._schedule = LazyMinHeap()
        for idx, iterator in enumerate(self._iterators):
            peek = iterator.peek()
            if peek is not None:
                self._schedule.push(idx, peek)

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        while self._schedule and not self._done and not self._budget_exhausted():
            if self._cancelled():
                break
            idx, _ = self._schedule.pop()
            iterator = self._iterators[idx]
            node = iterator.settle_next(self.params.dmax)
            if node is not None:
                self.stats.explore()
                self._pops_since_flush += 1
                self._record_visit(node, idx)
                self._profile_tick()
            peek = iterator.peek()
            if peek is not None:
                self._schedule.push(idx, peek)
            if self._should_flush():
                self._flush(self._edge_bound())
        return self._finish()

    def _frontier_sizes(self) -> dict[str, int]:
        return {"iterators": len(self._schedule)}

    # ------------------------------------------------------------------
    def _record_visit(self, node: int, iterator_idx: int) -> None:
        """Register a settle and emit the *new* origin combinations it
        completes (Section 3's visited-list intersection)."""
        iterator = self._iterators[iterator_idx]
        slots = self._visited.setdefault(node, [[] for _ in range(self.k)])
        best = self._best_dist.setdefault(node, [inf] * self.k)
        dist = iterator.settled[node]
        for i in iterator.keyword_indices:
            slots[i].append(iterator_idx)
            if dist < best[i]:
                best[i] = dist
        if any(not slot for slot in slots):
            return
        for i in iterator.keyword_indices:
            self._emit_new_combos(node, slots, i, iterator_idx)

    def _emit_new_combos(
        self, node: int, slots: list[list[int]], new_slot: int, new_iterator: int
    ) -> None:
        """Emit combinations that place the newly-arrived iterator in
        ``new_slot``; older combinations were emitted on earlier visits.
        Capped by ``max_combos_per_node`` to bound the cross-product."""
        cap = self.params.max_combos_per_node
        pools = [
            slot if i != new_slot else [new_iterator] for i, slot in enumerate(slots)
        ]
        for combo in itertools.product(*pools):
            emitted = self._combos_emitted.get(node, 0)
            if emitted >= cap:
                return
            self._combos_emitted[node] = emitted + 1
            self._emit_combo(node, combo)

    def _emit_combo(self, node: int, combo: tuple[int, ...]) -> None:
        paths = []
        dists = []
        for iterator_idx in combo:
            iterator = self._iterators[iterator_idx]
            paths.append(iterator.path_to_origin(node))
            dists.append(iterator.settled[node])
        self._emit_tree(node, paths, dists)

    # ------------------------------------------------------------------
    def _edge_bound(self) -> float:
        """Section 4.5 bound: ``m_i`` is the nearest next-settle distance
        among keyword-i iterators; exhausted keywords contribute inf
        (no new node can be reached from them)."""
        ms = [inf] * self.k
        for idx, _ in self._schedule.items():
            iterator = self._iterators[idx]
            peek = iterator.peek()
            if peek is None:
                continue
            for i in iterator.keyword_indices:
                if peek < ms[i]:
                    ms[i] = peek
        incomplete = (
            vector
            for vector in self._best_dist.values()
            if any(d == inf for d in vector)
        )
        return nra_edge_bound(ms, incomplete)
