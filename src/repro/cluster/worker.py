"""Shard worker: one process, one snapshot-warmed ``QueryService``.

``worker_main`` is the target the supervisor passes to
``multiprocessing.Process``.  Its whole world is one queue and one pipe:

* the **request queue** (private to this worker) carries ``(kind,
  job_id, ...)`` tuples of primitives — request-shaped dicts, dataset
  name lists, floats — never live objects;
* the **response connection** (private to this worker) carries
  ``(worker_id, job_id, payload)`` with a dict payload.

Responses travel over a per-worker ``Pipe`` rather than one shared
queue deliberately: a ``multiprocessing.Queue`` writer killed mid-put
can die holding the queue's shared write lock, wedging every *other*
worker's responses forever.  A killed worker can only corrupt its own
pipe, whose buffered responses stay readable up to the EOF and which
the supervisor discards on restart — crash containment, not just crash
detection.

Engines are registered from snapshot *paths* via
:meth:`QueryService.register_snapshot`, so warmup is a disk load —
``from_database`` never runs inside a worker, and nothing un-picklable
crosses the process boundary in either direction.

The loop never lets a per-message failure kill the process: any
exception while handling a message becomes a structured error payload
for that job and the loop continues.  The worker exits on the ``stop``
sentinel, on a torn-down channel, or when it notices its parent died
(orphan protection: a supervisor crash must not strand worker
processes).

Deadlines *are* enforced here (cooperatively): the supervisor ships
``timeout`` with the request, the worker's private ``QueryService``
arms a :class:`~repro.core.cancellation.CancellationToken` from it, and
an expired search stops at its next check and returns a structured
``DeadlineExceededError`` response — with the answers released so far
when the request set ``allow_partial``.  The supervisor still watches
the clock as a backstop (a request stuck in the queue behind a long
search has no worker-side token yet).

Live updates arrive as ``mutate`` messages (a dataset name plus wire
mutation dicts): the private service applies and commits them, so the
dataset's version advances and subsequent searches see the new epoch —
all without restarting the process.  ``reload`` re-registers a dataset
from a snapshot file, no-opping when the file's content digest matches
what the worker already serves; ``versions`` reports per-dataset epoch
versions so the supervisor can observe replica drift.

Durability: when ``settings["wals"]`` maps datasets to mutation-log
directories (:mod:`repro.wal`, written by the supervisor *before* each
broadcast), the worker **replays the log at startup** — including the
startup after a restart-on-crash — so a ``kill -9``'d replica comes
back at exactly the last durable epoch instead of silently serving its
snapshot.  Workers open the log read-only (only the supervisor
appends), and a ``mutate`` message carrying the record's ``seq`` is
acknowledged idempotently when the startup replay already covered it —
the guard against double-applying a batch that raced a restart.

The supervisor can also stop a request explicitly: it writes the job id
into this worker's shared-memory **cancel ring**
(:meth:`~repro.cluster.pool.WorkerPool.cancel`); the token's external
check probes the ring during the search, and a ring hit *before* the
search starts (the request was cancelled while queued) short-circuits
to a cancelled response without touching the engine.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import sys
import time
from typing import Optional

from repro.core.cancellation import CancellationToken
from repro.errors import SearchCancelledError
from repro.service.service import QueryService
from repro.service.wire import (
    error_response_dict,
    request_from_dict,
    response_to_dict,
)

__all__ = ["worker_main", "WORKER_POLL_SECONDS"]

#: How often a blocked worker wakes to check its parent is still alive.
WORKER_POLL_SECONDS = 1.0


def _parent_alive() -> bool:
    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


def _ring_probe(cancel_cells, job_id: int):
    """A zero-arg callable: is ``job_id`` in the cancel ring?

    One slice read per probe; the synchronized Array takes its lock
    once.  Probes run only every ``check_every`` pops, so the lock is
    off the hot path.
    """

    def probe() -> bool:
        return job_id in cancel_cells[:]

    return probe


def _handle_request(
    service: QueryService, payload: dict, job_id: int, cancel_cells
) -> dict:
    """Execute one request dict, returning a response dict (never raises)."""
    try:
        request = request_from_dict(payload)
    except Exception as exc:
        return error_response_dict(payload, str(exc), type(exc).__name__)
    token: Optional[CancellationToken] = None
    if cancel_cells is not None:
        probe = _ring_probe(cancel_cells, job_id)
        if probe():
            # Cancelled while still queued: answer without searching.
            return error_response_dict(
                payload,
                "request cancelled before execution",
                SearchCancelledError.__name__,
            )
        # Consumed as the *parent* of the token the service arms, whose
        # full checks probe parents ungated — so only the ring probe
        # matters here; the service's own token carries the per-request
        # check interval.
        token = CancellationToken(external_check=probe)
    # QueryService.search never raises for a well-formed request: engine
    # failures come back as structured error responses already, and the
    # service composes its own deadline token on top of ``token``.
    return response_to_dict(service.search(request, token=token))


def _handle_message(
    service: QueryService, worker_id: int, kind: str, message: tuple, cancel_cells
) -> dict:
    """Dispatch one non-stop message to its handler (may raise)."""
    if kind == "request":
        return _handle_request(service, message[2], message[1], cancel_cells)
    if kind == "ping":
        return {
            "pong": True,
            "worker_id": worker_id,
            "pid": os.getpid(),
            "datasets": service.datasets(),
            "versions": service.dataset_versions(),
        }
    if kind == "metrics":
        return service.metrics(include_samples=message[2])
    if kind == "warmup":
        names: Optional[list] = message[2]
        return service.warmup(names)
    if kind == "mutate":
        # Live-update propagation: the supervisor broadcasts one batch
        # to every replica of the dataset's shard; the private
        # QueryService applies and commits it (upgrading the dataset to
        # mutable on first touch), bumping the version its result cache
        # is keyed by — no process restart, no stale answers.
        payload = message[2]
        name = payload["dataset"]
        seq = payload.get("seq")
        if seq is not None and service.dataset_version(name) >= seq:
            # This replica's startup WAL replay already covered the
            # record (a broadcast raced a restart): acknowledge
            # idempotently rather than double-applying the batch.
            # Comparing against the effective version assumes replica
            # versions and WAL sequences share one lineage — the
            # supervisor maintains that by resetting the log whenever
            # a reload bumps replica versions past it.
            return {
                "dataset": name,
                "version": service.dataset_version(name),
                "applied": 0,
                "new_nodes": [],
                "compacted": False,
                "cache_purged": 0,
                "skipped": True,
            }
        return service.apply(name, payload["mutations"]).to_dict()
    if kind == "reload":
        # Snapshot hot-reload: re-register from a (usually re-written)
        # snapshot file; a digest match means this worker already holds
        # the epoch and the reload no-ops.
        payload = message[2]
        return service.reload_snapshot(
            payload["dataset"], payload["path"], force=payload.get("force", False)
        )
    if kind == "versions":
        return {"versions": service.dataset_versions()}
    if kind == "events":
        # Incremental event-log pull: the supervisor tracks a cursor
        # per worker and re-sequences what comes back into its own
        # stream.  ``last_seq`` going backwards tells it this process
        # restarted with a fresh log.
        payload = message[2] if len(message) > 2 and message[2] else {}
        return service.events(since=int(payload.get("since") or 0))
    if kind == "profile":
        # Cumulative sampler snapshot (None when profiling is off);
        # the supervisor diffs two of these to get a window.
        return {"profile": service.profile_snapshot()}
    if kind == "queries":
        # Workload-analytics sketch export; the supervisor merges the
        # replicas' exports into the fleet view (mergeable summaries,
        # like the metrics registry).
        return {"queries": service.query_stats()}
    if kind == "sleep":
        # Debug/test hook: hold this worker busy for a while, the cheap
        # stand-in for a long search when exercising crash recovery and
        # drain behaviour.
        time.sleep(message[2])
        return {"slept": message[2]}
    raise ValueError(f"unknown message kind {kind!r}")


def worker_main(
    worker_id: int,
    snapshots: dict,
    settings: dict,
    request_queue,
    response_conn,
    cancel_cells=None,
) -> None:
    """Run the worker loop until stopped (process entrypoint).

    Parameters
    ----------
    worker_id:
        This worker's id, echoed on every response.
    snapshots:
        ``{dataset_name: snapshot_path_string}`` for this shard.
    settings:
        Plain dict of ``QueryService`` knobs: ``cache_capacity``,
        ``cache_ttl``, ``cooperative_cancellation``, ``tracing``,
        ``storage_mode``.
    request_queue / response_conn:
        The channel pair described in the module docstring.
    cancel_cells:
        This worker's shared-memory cancel ring (None disables the
        explicit-cancel channel; deadlines still work).
    """
    cooperative = settings.get("cooperative_cancellation", True)
    if not cooperative:
        # Control-arm fidelity (bench_cancellation): no ring probes, no
        # armed tokens — a deadline miss burns the worker to completion.
        cancel_cells = None
    service = QueryService(
        cache_capacity=settings.get("cache_capacity", 1024),
        cache_ttl=settings.get("cache_ttl"),
        max_workers=1,
        cooperative_cancellation=cooperative,
        tracing=settings.get("tracing", True),
        profiling=settings.get("profiling", False),
        profile_interval=settings.get("profile_interval", 0.02),
        event_log_capacity=settings.get("event_log_capacity", 512),
        accounting=settings.get("accounting", True),
        # Storage tier for snapshot loads (ram/mapped/auto; None defers
        # to the environment).  Set fleet-wide by the supervisor: every
        # worker — including restart-on-crash replacements, which reuse
        # this settings dict — maps the same snapshot files, so the OS
        # page cache holds one physical copy per shard.
        storage_mode=settings.get("storage_mode"),
        # Workers never evaluate SLOs — the supervisor owns the fleet
        # view; an engine per replica would just burn samples.
        slo_objectives=(),
    )
    for name, path in snapshots.items():
        service.register_snapshot(name, path)
    for name, wal_path in (settings.get("wals") or {}).items():
        if name not in snapshots:
            continue
        # Crash recovery: replay the supervisor-written WAL (read-only;
        # non-strict — a replica that cannot replay to the tip keeps
        # serving what it recovered, visible as version drift, instead
        # of crash-looping the whole shard).
        try:
            service.attach_wal(name, wal_path, writable=False, strict=False)
        except Exception as exc:
            print(
                f"repro worker {worker_id}: WAL replay for {name!r} "
                f"failed ({type(exc).__name__}: {exc}); serving the "
                f"snapshot state",
                file=sys.stderr,
            )

    try:
        while True:
            try:
                message = request_queue.get(timeout=WORKER_POLL_SECONDS)
            except queue.Empty:
                if not _parent_alive():
                    break
                continue
            except (EOFError, OSError):
                break

            kind = message[0]
            if kind == "stop":
                break
            job_id = message[1]
            try:
                payload = _handle_message(
                    service, worker_id, kind, message, cancel_cells
                )
            except Exception as exc:
                payload = {"error": str(exc), "error_type": type(exc).__name__}
            try:
                response_conn.send((worker_id, job_id, payload))
            except (BrokenPipeError, OSError):
                break  # supervisor is gone; nothing left to serve
    finally:
        service.close(wait=False)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(
        "repro.cluster.worker is a process entrypoint; start workers "
        "through repro.cluster.WorkerPool"
    )
