"""Service-tier explain + accounting: report delivery and retention,
cache interplay, workload sketching, slow-log enrichment, and the wire
round-trip of the new fields."""

import json

import pytest

from repro.service.service import (
    QueryRequest,
    QueryService,
    request_fingerprint,
)
from repro.service.wire import (
    request_from_dict,
    request_to_dict,
    response_from_dict,
    response_to_dict,
)

QUERY = "gray transaction"


@pytest.fixture
def service(toy_engine):
    with QueryService(slow_query_threshold=None) as svc:
        svc.register_engine("toy", toy_engine)
        yield svc


class TestExplainDelivery:
    def test_response_embeds_report(self, service):
        response = service.search(
            QueryRequest("toy", QUERY, k=3, explain=True, request_id="r1")
        )
        response.raise_for_error()
        report = response.result.explain
        assert report["canonical"]["keywords"] == ["gray", "transaction"]
        assert report["costs"]["pops_in"] + report["costs"]["pops_out"] > 0

    def test_report_retained_by_request_id(self, service):
        service.search(
            QueryRequest("toy", QUERY, explain=True, request_id="r2")
        ).raise_for_error()
        stored = service.explain("r2")
        assert stored is not None
        assert stored["canonical"]["keywords"] == ["gray", "transaction"]
        assert service.explain("never-ran") is None

    def test_plain_request_carries_no_report(self, service):
        response = service.search(QueryRequest("toy", QUERY))
        response.raise_for_error()
        assert response.result.explain is None


class TestCacheInterplay:
    def test_cached_copy_is_stripped(self, service):
        service.search(
            QueryRequest("toy", QUERY, explain=True, request_id="warm")
        ).raise_for_error()
        # The explain run warmed the cache, but with the report removed
        # — cached hits must not replay a stale request's report.
        hit = service.search(QueryRequest("toy", QUERY))
        hit.raise_for_error()
        assert hit.cached is True
        assert hit.result.explain is None

    def test_explain_bypasses_cache_read(self, service):
        service.search(QueryRequest("toy", QUERY)).raise_for_error()
        response = service.search(
            QueryRequest("toy", QUERY, explain=True, request_id="fresh")
        )
        response.raise_for_error()
        assert response.cached is False
        assert response.result.explain is not None


class TestWorkloadAnalytics:
    def test_sketch_counts_and_costs(self, service):
        for query in (QUERY, "transaction gray"):
            service.search(
                QueryRequest("toy", query, use_cache=False)
            ).raise_for_error()
        stats = service.query_stats()
        assert stats["total"] == 2
        (entry,) = stats["entries"]
        # Term order folds into one fingerprint.
        assert "|gray transaction|" in entry["key"]
        assert entry["count"] == 2
        assert entry["costs"]["pops_in"] > 0
        assert entry["elapsed_total"] > 0.0

    def test_cache_hits_not_double_counted(self, service):
        service.search(QueryRequest("toy", QUERY)).raise_for_error()
        hit = service.search(QueryRequest("toy", QUERY))
        assert hit.cached is True
        assert service.query_stats()["total"] == 1

    def test_fingerprint_distinguishes_algorithm(self, service):
        service.search(
            QueryRequest("toy", QUERY, use_cache=False)
        ).raise_for_error()
        service.search(
            QueryRequest("toy", QUERY, algorithm="si-backward", use_cache=False)
        ).raise_for_error()
        keys = {entry["key"] for entry in service.query_stats()["entries"]}
        assert len(keys) == 2

    def test_request_fingerprint_matches_sketch_key(self, service):
        request = QueryRequest("toy", QUERY, use_cache=False)
        service.search(request).raise_for_error()
        (entry,) = service.query_stats()["entries"]
        assert entry["key"] == request_fingerprint(request)


class TestAccountingDisabled:
    def test_off_switch_yields_empty_shapes(self, toy_engine):
        with QueryService(accounting=False) as svc:
            svc.register_engine("toy", toy_engine)
            response = svc.search(
                QueryRequest("toy", QUERY, explain=True, request_id="x")
            )
            response.raise_for_error()
            # The engine still explains (the caller asked), but nothing
            # is retained or sketched service-side.
            assert response.result.explain is not None
            assert svc.explain("x") is None
            stats = svc.query_stats()
            assert stats == {
                "capacity": 0,
                "total": 0,
                "floor": 0,
                "entries": [],
            }


class TestSlowLogEnrichment:
    def test_entries_carry_fingerprint_and_availability(self, toy_engine):
        with QueryService(slow_query_threshold=0.0) as svc:
            svc.register_engine("toy", toy_engine)
            request = QueryRequest(
                "toy", QUERY, explain=True, request_id="slow-1"
            )
            svc.search(request).raise_for_error()
            svc.search(QueryRequest("toy", QUERY, use_cache=False))
            entries = svc.slow_log.entries()
            by_explain = {
                entry["explain_available"]: entry for entry in entries
            }
            assert by_explain[True]["fingerprint"] == request_fingerprint(
                request
            )
            assert by_explain[False]["fingerprint"]


class TestWire:
    def test_request_round_trip_explain_flag(self):
        request = QueryRequest("toy", QUERY, explain=True, request_id="w1")
        data = request_to_dict(request)
        json.dumps(data)
        assert data["explain"] is True
        assert request_from_dict(data) == request
        assert request_from_dict({"dataset": "toy", "query": "q"}).explain is False

    def test_response_round_trip_report_and_costs(self, service):
        response = service.search(
            QueryRequest("toy", QUERY, explain=True, request_id="w2")
        )
        response.raise_for_error()
        data = response_to_dict(response)
        json.dumps(data)
        restored = response_from_dict(data)
        assert restored.result.explain == response.result.explain
        assert (
            restored.result.stats.cost_vector()
            == response.result.stats.cost_vector()
        )
        assert restored.result.stats.heap_ops > 0
