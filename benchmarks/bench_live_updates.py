"""Live updates under read traffic: QPS vs mutation rate + visibility.

The serving question this answers: what does ingesting updates cost a
read-heavy keyword-search service, and how fast does a committed write
become queryable?

The workload: ``NUM_OPS`` operations against a thread-tier
``QueryService`` over a synthetic DBLP dataset registered as a live
:class:`~repro.live.MutableDataset`.  A configurable slice of the
stream is mutation batches (insert a paper node + its authorship edge —
the example from the paper's own domain); the rest are cached/uncached
keyword reads.  Each mutation rate reports:

* **QPS** over the whole mixed stream (reads keep flowing while
  commits build epochs — MVCC means no reader ever blocks on a writer
  beyond the registry lock);
* **commit -> visibility latency**: after every ``apply`` returns, the
  freshly inserted unique term is queried immediately; the paper must
  be in the answers on the *first* try (visibility is the commit
  itself, not an eventual refresh), and the measured latency is that
  first post-commit query's wall time;
* the result-cache hit rate, showing version-keyed invalidation at
  work: higher mutation rates shred the cache exactly as they should.

A final arm re-runs the highest mutation rate with a durable WAL
attached (:mod:`repro.wal`, the ``"batched"`` sync default), measuring
what crash-recoverable commits cost the mixed stream.

Assertions: every inserted paper is visible on the first post-commit
query; QPS stays positive; the zero-mutation arm's hit rate exceeds
the mutating arms'; the WAL arm keeps at least 85% of the equivalent
in-memory arm's QPS (the < 15% durability-overhead acceptance bar).

Env knobs: ``REPRO_SCALE`` scales the dataset; ``BENCH_JSON_OUT``
appends JSON rows to a file.

Run directly (``python benchmarks/bench_live_updates.py``) or under
pytest-benchmark.
"""

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.common import Report, build_bench, fmt
from repro.live import MutableDataset
from repro.live.mutations import AddEdge, AddNode
from repro.service import QueryRequest, QueryService

from conftest import as_float, cell, emit_json, run_report

NUM_OPS = 400
MUTATION_PERCENTS = (0, 5, 20)
READ_QUERY_POOL = 12


def _read_queries(engine) -> list[str]:
    """Mid-frequency two-keyword queries (repeat often enough that the
    cache matters, vary enough that it is not a single hot entry)."""
    by_freq = engine.index.terms_by_frequency()
    mids = [term for term, freq in by_freq if 5 <= freq <= 60]
    assert len(mids) >= 2 * READ_QUERY_POOL, (
        f"dataset too small ({len(by_freq)} terms); raise REPRO_SCALE"
    )
    return [
        f"{mids[i]} {mids[i + READ_QUERY_POOL]}" for i in range(READ_QUERY_POOL)
    ]


def _mutation_batch(sequence: int, author_node: int, conference_node: int) -> list:
    """Insert one paper with a unique title term plus its edges."""
    title = f"livepaper{sequence} incremental overlays"
    return [
        AddNode(label=title, table="paper", text=title),
        AddEdge(u=-1, v=conference_node),
        AddNode(label=f"writes:{sequence}", table="writes"),
        AddEdge(u=-2, v=-1),
        AddEdge(u=-2, v=author_node),
    ]


def _run_mode(engine, percent: int, reads: list[str], wal_path=None) -> dict:
    service = QueryService(max_workers=4)
    dataset = MutableDataset.from_engine(engine, compact_ratio=None)
    service.register_mutable("dblp", dataset, wal_path=wal_path)
    graph = engine.graph
    author = next(n for n in graph.nodes() if graph.table(n) == "author")
    conference = next(n for n in graph.nodes() if graph.table(n) == "conference")

    mutation_every = (100 // percent) if percent else None
    visibility: list[float] = []
    mutations = 0
    start = time.perf_counter()
    for i in range(NUM_OPS):
        if mutation_every is not None and i % mutation_every == 0:
            result = service.apply(
                "dblp", _mutation_batch(i, author, conference)
            )
            mutations += 1
            probe_start = time.perf_counter()
            response = service.search(
                QueryRequest("dblp", f"livepaper{i}", k=5)
            )
            visibility.append(time.perf_counter() - probe_start)
            response.raise_for_error()
            answer_nodes = {
                node
                for answer in response.result.answers
                for path in answer.tree.paths
                for node in path
            }
            assert result.new_nodes[0] in answer_nodes, (
                f"inserted paper invisible right after commit (op {i})"
            )
        else:
            service.search(QueryRequest("dblp", reads[i % len(reads)], k=5))
    elapsed = time.perf_counter() - start
    stats = service.metrics()
    service.close(wait=False)
    return {
        "experiment": "live-updates",
        "mode": f"{percent}% mutations" + (" + WAL" if wal_path else ""),
        "wal": wal_path is not None,
        "mutation_percent": percent,
        "ops": NUM_OPS,
        "mutations": mutations,
        "seconds": elapsed,
        "qps": NUM_OPS / elapsed,
        "visibility_p50_ms": (
            sorted(visibility)[len(visibility) // 2] * 1000.0
            if visibility
            else None
        ),
        "visibility_max_ms": max(visibility) * 1000.0 if visibility else None,
        "cache_hit_rate": stats["cache_hit_rate"],
        "final_version": stats["datasets"]["versions"]["dblp"],
    }


def run_live_updates() -> Report:
    bench = build_bench("dblp")
    reads = _read_queries(bench.engine)
    report = Report(
        experiment="live-updates",
        title=(
            f"{NUM_OPS} mixed ops on synthetic DBLP "
            f"({bench.engine.graph.num_nodes} nodes): reads + live inserts"
        ),
        headers=[
            "mode",
            "QPS",
            "commit->visible p50 (ms)",
            "max (ms)",
            "cache hit rate",
            "epochs",
        ],
    )
    rows = [_run_mode(bench.engine, percent, reads) for percent in MUTATION_PERCENTS]
    with tempfile.TemporaryDirectory() as tmp:
        rows.append(
            _run_mode(
                bench.engine,
                MUTATION_PERCENTS[-1],
                reads,
                wal_path=Path(tmp) / "dblp.wal",
            )
        )
    for row in rows:
        emit_json(row)
        report.rows.append(
            [
                row["mode"],
                fmt(row["qps"]),
                fmt(row["visibility_p50_ms"], 2)
                if row["visibility_p50_ms"] is not None
                else "-",
                fmt(row["visibility_max_ms"], 2)
                if row["visibility_max_ms"] is not None
                else "-",
                fmt(row["cache_hit_rate"], 3),
                str(row["final_version"]),
            ]
        )
    assert all(row["qps"] > 0 for row in rows)
    # Version-keyed invalidation must actually shred the cache as the
    # mutation rate rises; the read-only arm keeps the best hit rate.
    assert rows[0]["cache_hit_rate"] >= rows[-1]["cache_hit_rate"], (
        "read-only arm should have the best cache hit rate"
    )
    # Durability bar: journaling at the batched-fsync default must cost
    # the mixed stream less than 15% QPS vs the in-memory equivalent.
    wal_row = rows[-1]
    memory_row = next(
        row
        for row in rows
        if row["mutation_percent"] == wal_row["mutation_percent"]
        and not row["wal"]
    )
    overhead = 1.0 - wal_row["qps"] / memory_row["qps"]
    assert wal_row["qps"] >= 0.85 * memory_row["qps"], (
        f"WAL overhead {overhead:.1%} exceeds the 15% budget "
        f"({wal_row['qps']:.0f} vs {memory_row['qps']:.0f} QPS)"
    )
    report.notes.append(
        f"WAL (batched fsync) QPS overhead at "
        f"{wal_row['mutation_percent']}% mutations: {overhead:+.1%} "
        f"(budget < 15%)"
    )
    report.notes.append(
        "every inserted paper was queryable on the first post-commit "
        "request (visibility == commit latency, no refresh delay)"
    )
    report.notes.append(
        f"dataset scale knob REPRO_SCALE={os.environ.get('REPRO_SCALE', '1.0')}"
    )
    return report


def test_live_updates(benchmark):
    report = run_report(benchmark, run_live_updates)
    for row in range(len(report.rows)):
        assert as_float(cell(report, row, 1)) > 0


if __name__ == "__main__":
    print(run_live_updates().render())
