"""Query service layer (production north star, ROADMAP).

A deployable tier above the single-engine library API:

* :class:`QueryService` — engine registry + result cache + concurrent
  batch executor + metrics, behind structured
  :class:`QueryRequest` / :class:`QueryResponse` dataclasses.
* :class:`~repro.service.cache.ResultCache` — thread-safe LRU + TTL
  cache, reusable on its own.
* :mod:`repro.service.snapshot` — versioned disk format for built
  graph/prestige/index state, so restarts skip ``from_database``.
* :class:`~repro.service.metrics.ServiceMetrics` — latency percentiles,
  cache hit rate and error counters exported as a plain dict.

See ``examples/service_quickstart.py`` for the end-to-end tour.
"""

from repro.service.cache import ResultCache, canonical_cache_key
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.service import (
    QueryRequest,
    QueryResponse,
    QueryService,
    coerce_request,
)
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    load_engine,
    load_snapshot,
    save_engine,
    save_snapshot,
    snapshot_info,
)
from repro.service.wire import (
    request_from_dict,
    request_to_dict,
    response_from_dict,
    response_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "coerce_request",
    "request_to_dict",
    "request_from_dict",
    "response_to_dict",
    "response_from_dict",
    "result_to_dict",
    "result_from_dict",
    "ResultCache",
    "canonical_cache_key",
    "ServiceMetrics",
    "percentile",
    "SNAPSHOT_VERSION",
    "save_snapshot",
    "load_snapshot",
    "save_engine",
    "load_engine",
    "snapshot_info",
]
