"""Unified telemetry: structured tracing, metric families, slow-query log.

Stdlib-only observability for the whole serving stack.  Three pieces:

* :mod:`repro.telemetry.trace` — ``Tracer`` / ``Span`` / ``TraceStore``:
  one ``trace_id`` per query, a span tree crossing thread and process
  boundaries (``http → route → queue_wait → worker → engine``);
* :mod:`repro.telemetry.metrics` — ``MetricsRegistry``: counters,
  gauges and bucketed histograms every layer registers into, exported
  as JSON or Prometheus text exposition, mergeable across replicas;
* :mod:`repro.telemetry.slowlog` — ``SlowQueryLog``: a ring buffer of
  span trees for queries over a latency threshold.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and the full list
of exported metric families.
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
    render_prometheus,
)
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.trace import (
    Span,
    Tracer,
    TraceStore,
    build_span_tree,
    current_span,
    new_span_id,
    new_trace_id,
    render_span_tree,
    use_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "render_prometheus",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "TraceStore",
    "build_span_tree",
    "current_span",
    "new_span_id",
    "new_trace_id",
    "render_span_tree",
    "use_span",
]
