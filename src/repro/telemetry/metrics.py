"""Central metrics registry: counters, gauges, bucketed histograms.

Every layer of the stack registers families here — the service cache,
cluster pool health, live-mutation dataset versions, WAL append/fsync
counters — and two consumers read them back:

* ``QueryService.metrics()`` / ``ShardedQueryService.metrics()`` embed
  :meth:`MetricsRegistry.export` (a JSON-safe dict) under a
  ``"registry"`` key, and :func:`merge_registries` combines the exports
  of many replicas into one fleet view;
* the HTTP front-end renders the same export as Prometheus text
  exposition (``/metrics?format=prometheus``) via
  :func:`render_prometheus`.

Unlike :class:`~repro.service.metrics.ServiceMetrics` (whose reservoir
percentiles are exact but unmergeable without shipping samples),
histogram buckets merge across replicas by plain addition — the trade
the whole Prometheus ecosystem makes.

Two ways to feed a family:

* *event-driven*: call ``inc`` / ``observe`` / ``set`` at the point the
  thing happens (request counters, latency histograms);
* *collector-driven*: register a callback with :meth:`add_collector`
  that reads live state (cache sizes, WAL sequence numbers) and sets
  gauges/counters; collectors run at export time, so scrapes always see
  current values without per-event bookkeeping.

Stdlib only; thread-safe behind one registry-wide lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable, Optional, Sequence, Union

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "render_prometheus",
]

#: Default histogram buckets (seconds), Prometheus-style log-ish ladder.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_Number = Union[int, float]


def _bucket_label(bound: float) -> str:
    return format(bound, "g")


class _Family:
    """Shared machinery: label validation and keyed sample storage."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.RLock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)
        self._lock = lock
        self._samples: dict = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labels):
            raise ValueError(
                f"{self.name}: expected labels {sorted(self.labels)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labels)

    def _label_dict(self, key: tuple) -> dict:
        return dict(zip(self.labels, key))

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def export(self) -> dict:
        raise NotImplementedError


class Counter(_Family):
    """A monotonically increasing total; merges across replicas by sum."""

    kind = "counter"

    def inc(self, amount: _Number = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def set_total(self, value: _Number, **labels: str) -> None:
        """Overwrite the running total — for collector-driven counters
        whose true source of increments lives elsewhere (WAL stats)."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = value

    def value(self, **labels: str) -> _Number:
        with self._lock:
            return self._samples.get(self._key(labels), 0)

    def export(self) -> dict:
        with self._lock:
            samples = [
                {"labels": self._label_dict(key), "value": value}
                for key, value in sorted(self._samples.items())
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.labels),
            "samples": samples,
        }


class Gauge(_Family):
    """A value that can go both ways.  ``merge`` picks the cross-replica
    combine: ``"sum"`` (sizes, queue depths) or ``"max"`` (versions,
    sequence numbers — where replicas report the same logical quantity).
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.RLock,
        merge: str = "sum",
    ) -> None:
        if merge not in ("sum", "max"):
            raise ValueError(f"{name}: merge must be 'sum' or 'max', got {merge!r}")
        super().__init__(name, help_text, labels, lock)
        self.merge = merge

    def set(self, value: _Number, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = value

    def inc(self, amount: _Number = 1, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def dec(self, amount: _Number = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> _Number:
        with self._lock:
            return self._samples.get(self._key(labels), 0)

    def export(self) -> dict:
        with self._lock:
            samples = [
                {"labels": self._label_dict(key), "value": value}
                for key, value in sorted(self._samples.items())
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.labels),
            "merge": self.merge,
            "samples": samples,
        }


class Histogram(_Family):
    """Bucketed distribution.  Exported bucket counts are *cumulative*
    (Prometheus ``le`` semantics), which keeps the merge a plain
    per-bucket sum."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels, lock)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"{name}: at least one bucket bound required")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: duplicate bucket bounds")
        self.buckets = bounds

    def observe(self, value: _Number, **labels: str) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = self._samples[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            state["counts"][index] += 1
            state["sum"] += value
            state["count"] += 1

    def export(self) -> dict:
        with self._lock:
            samples = []
            for key, state in sorted(self._samples.items()):
                cumulative: dict[str, int] = {}
                running = 0
                for bound, count in zip(self.buckets, state["counts"]):
                    running += count
                    cumulative[_bucket_label(bound)] = running
                cumulative["+Inf"] = state["count"]
                samples.append(
                    {
                        "labels": self._label_dict(key),
                        "buckets": cumulative,
                        "sum": state["sum"],
                        "count": state["count"],
                    }
                )
        return {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.labels),
            "samples": samples,
        }


class MetricsRegistry:
    """Owns metric families and export-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    def _get_or_create(self, cls, name: str, factory) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                    )
                return family
            family = self._families[name] = factory()
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(  # type: ignore[return-value]
            Counter, name, lambda: Counter(name, help_text, labels, self._lock)
        )

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        merge: str = "sum",
    ) -> Gauge:
        return self._get_or_create(  # type: ignore[return-value]
            Gauge, name, lambda: Gauge(name, help_text, labels, self._lock, merge)
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram,
            name,
            lambda: Histogram(name, help_text, labels, self._lock, buckets),
        )

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run at every export, before families are
        read — the hook that turns live state into gauge values."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    def export(self) -> dict:
        """Run collectors, then snapshot every family as JSON-safe data."""
        self.collect()
        with self._lock:
            families = dict(self._families)
        return {name: families[name].export() for name in sorted(families)}

    def reset(self) -> None:
        """Zero every family's samples (families stay registered)."""
        with self._lock:
            for family in self._families.values():
                family.clear()


# ----------------------------------------------------------------------
# cross-replica merge
# ----------------------------------------------------------------------
def _merge_value(kind: str, merge: str, left: _Number, right: _Number) -> _Number:
    if kind == "gauge" and merge == "max":
        return max(left, right)
    return left + right


def merge_registries(parts: Iterable[Optional[dict]]) -> dict:
    """Combine :meth:`MetricsRegistry.export` dicts from many replicas.

    Counters and histograms add; gauges follow their declared ``merge``
    mode.  A family or label set present in only some replicas merges
    from the replicas that have it — heterogeneous fleets (a worker
    mid-restart, a replica without a dataset) must not KeyError.
    """
    merged: dict[str, dict] = {}
    for part in parts:
        if not isinstance(part, dict):
            continue
        for name, family in part.items():
            if not isinstance(family, dict):
                continue
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    key: value
                    for key, value in family.items()
                    if key != "samples"
                }
                target["samples"] = {}
            kind = family.get("type", "untyped")
            merge_mode = family.get("merge", "sum")
            for sample in family.get("samples", ()):
                labels = sample.get("labels", {})
                key = tuple(sorted(labels.items()))
                existing = target["samples"].get(key)
                if kind == "histogram":
                    if existing is None:
                        target["samples"][key] = {
                            "labels": dict(labels),
                            "buckets": dict(sample.get("buckets", {})),
                            "sum": sample.get("sum", 0.0),
                            "count": sample.get("count", 0),
                        }
                    else:
                        buckets = existing["buckets"]
                        for bound, count in sample.get("buckets", {}).items():
                            buckets[bound] = buckets.get(bound, 0) + count
                        existing["sum"] += sample.get("sum", 0.0)
                        existing["count"] += sample.get("count", 0)
                else:
                    value = sample.get("value", 0)
                    if existing is None:
                        target["samples"][key] = {
                            "labels": dict(labels),
                            "value": value,
                        }
                    else:
                        existing["value"] = _merge_value(
                            kind, merge_mode, existing["value"], value
                        )
    result: dict[str, dict] = {}
    for name in sorted(merged):
        family = merged[name]
        samples = [family["samples"][key] for key in sorted(family["samples"])]
        for sample in samples:
            if "buckets" in sample:
                sample["buckets"] = _sort_buckets(sample["buckets"])
        result[name] = {**{k: v for k, v in family.items() if k != "samples"},
                        "samples": samples}
    return result


def _sort_buckets(buckets: dict) -> dict:
    def bound_key(label: str) -> float:
        return float("inf") if label == "+Inf" else float(label)

    return {label: buckets[label] for label in sorted(buckets, key=bound_key)}


# ----------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ----------------------------------------------------------------------
def _sanitize_name(name: str) -> str:
    cleaned = [
        ch if ch.isalnum() or ch in ("_", ":") else "_" for ch in name
    ]
    if cleaned and cleaned[0].isdigit():
        cleaned.insert(0, "_")
    return "".join(cleaned)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: _Number) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_string(labels: dict, extra: Optional[dict] = None) -> str:
    items = list(labels.items()) + list((extra or {}).items())
    if not items:
        return ""
    body = ",".join(
        f'{_sanitize_name(str(key))}="{_escape_label(str(value))}"'
        for key, value in items
    )
    return "{" + body + "}"


def render_prometheus(families: Optional[dict]) -> str:
    """Render a registry export (or merge) as Prometheus text exposition."""
    lines: list[str] = []
    for name in sorted(families or {}):
        family = (families or {})[name]
        metric = _sanitize_name(name)
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {metric} {_escape_help(help_text)}")
        lines.append(f"# TYPE {metric} {kind}")
        for sample in family.get("samples", ()):
            labels = sample.get("labels", {})
            if kind == "histogram":
                for bound, count in sample.get("buckets", {}).items():
                    lines.append(
                        f"{metric}_bucket"
                        f"{_label_string(labels, {'le': bound})} "
                        f"{_format_number(count)}"
                    )
                lines.append(
                    f"{metric}_sum{_label_string(labels)} "
                    f"{_format_number(sample.get('sum', 0.0))}"
                )
                lines.append(
                    f"{metric}_count{_label_string(labels)} "
                    f"{_format_number(sample.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{metric}{_label_string(labels)} "
                    f"{_format_number(sample.get('value', 0))}"
                )
    return "\n".join(lines) + "\n"
