"""Expansion-backend selection (``SearchParams.expansion_backend``).

Four backends share one batched-engine contract:

* ``"python"`` — not a kernel at all: the seed's per-pop loops in
  ``backward_si``/``bidirectional``/``backward_mi``, kept bit-identical
  as the default;
* ``"scalar"`` — the batched engine with pure-python candidate
  kernels.  Slower than ``"python"`` (it exists for parity testing:
  every other kernel backend must match it bit for bit);
* ``"vectorized"`` — the batched engine with numpy kernels over the
  graph's CSR arrays;
* ``"numba"`` — compiled kernels; resolves to ``"vectorized"`` when
  numba is not importable so deployments opt in without a hard
  dependency.

``"auto"`` (the ``SearchParams`` default) resolves through the
``REPRO_EXPANSION_BACKEND`` environment variable — the switch CI's
kernel-parity job uses to run the whole tier-1 suite on a non-default
backend — and falls back to ``"python"`` when unset.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "ENV_VAR",
    "KERNEL_BACKENDS",
    "available_backends",
    "numba_available",
    "resolve_backend",
]

ENV_VAR = "REPRO_EXPANSION_BACKEND"

#: Backends implemented by the batched engines (everything but "python").
KERNEL_BACKENDS = ("scalar", "vectorized", "numba")

_VALID = ("python",) + KERNEL_BACKENDS

_numba_available: Optional[bool] = None


def numba_available() -> bool:
    """True when numba imports; probed once per process."""
    global _numba_available
    if _numba_available is None:
        try:
            import numba  # noqa: F401

            _numba_available = True
        except ImportError:
            _numba_available = False
    return _numba_available


def available_backends() -> tuple[str, ...]:
    """The backends that can actually run in this environment."""
    if numba_available():
        return _VALID
    return tuple(b for b in _VALID if b != "numba")


def resolve_backend(requested: str) -> str:
    """Map a ``SearchParams.expansion_backend`` value to a runnable backend.

    ``"auto"`` reads ``REPRO_EXPANSION_BACKEND`` (defaulting to
    ``"python"``); ``"numba"`` degrades to ``"vectorized"`` when numba
    is absent.  An unknown environment value raises so CI typos fail
    loudly instead of silently testing the default backend.
    """
    name = requested
    if name == "auto":
        name = os.environ.get(ENV_VAR, "").strip() or "python"
    if name not in _VALID:
        raise ValueError(
            f"unknown expansion backend {name!r}; expected one of {_VALID}"
        )
    if name == "numba" and not numba_available():
        return "vectorized"
    return name
