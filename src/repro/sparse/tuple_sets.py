"""Keyword tuple sets for candidate-network search (Discover/Sparse).

For a query ``{t_1..t_n}`` and each relation ``R``, the tuple set
``R^K`` contains the tuples of ``R`` whose matched-keyword set is
*exactly* ``K`` (the partition definition of Hristidis &
Papakonstantinou's Discover).  ``R^{}`` — the *free* tuple set — is the
whole relation and serves as connector material in candidate networks.

Matching reuses the library tokenizer, including the relation-name rule
(a keyword equal to a relation name matches every tuple of it), so
Sparse and the graph algorithms see the same keyword semantics.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.index.tokenizer import normalize_term, tokenize

__all__ = ["TupleSets"]


class TupleSets:
    """Partition of each relation by exact matched-keyword subset."""

    def __init__(self, db, keywords: Sequence[str]) -> None:
        self.db = db
        self.keywords = tuple(normalize_term(k) for k in keywords)
        if len(set(self.keywords)) != len(self.keywords):
            raise ValueError("duplicate keywords in query")
        self._matched: dict[str, dict[Hashable, frozenset[str]]] = {}
        self._partition: dict[str, dict[frozenset[str], list[Hashable]]] = {}
        self._build()

    def _build(self) -> None:
        query = set(self.keywords)
        for table in self.db.schema.tables:
            relation_matches = query & set(tokenize(table.name))
            matched_map: dict[Hashable, frozenset[str]] = {}
            partition: dict[frozenset[str], list[Hashable]] = {}
            for row in self.db.rows(table.name):
                tokens = set(relation_matches)
                for column in table.text_columns:
                    value = row[column]
                    if value:
                        tokens.update(t for t in tokenize(str(value)) if t in query)
                key = frozenset(tokens)
                pk = row[table.pk]
                matched_map[pk] = key
                partition.setdefault(key, []).append(pk)
            self._matched[table.name] = matched_map
            self._partition[table.name] = partition

    # ------------------------------------------------------------------
    def matched(self, table: str, pk: Hashable) -> frozenset[str]:
        """Query keywords matched by one tuple."""
        return self._matched[table].get(pk, frozenset())

    def members(self, table: str, subset: frozenset[str]) -> list[Hashable]:
        """Primary keys of ``table``'s tuples matching exactly ``subset``.

        The free tuple set (``subset == frozenset()`` requested via
        :meth:`free_members`) is *not* this — the empty partition class
        holds only tuples matching no keyword.
        """
        return self._partition[table].get(frozenset(subset), [])

    def free_members(self, table: str) -> list[Hashable]:
        """All tuples of ``table`` (the free tuple set ``R^{}``)."""
        return list(self.db.primary_keys(table))

    def has(self, table: str, subset: frozenset[str]) -> bool:
        """Is the non-free tuple set ``R^subset`` non-empty?

        Sparse prunes candidate networks referencing empty tuple sets
        before executing anything.
        """
        return bool(self._partition[table].get(frozenset(subset)))

    def nonempty_subsets(self, table: str) -> list[frozenset[str]]:
        """The non-empty, non-free keyword subsets present in ``table``."""
        return [
            subset
            for subset, pks in self._partition[table].items()
            if subset and pks
        ]

    def in_tuple_set(self, table: str, pk: Hashable, subset: frozenset[str]) -> bool:
        """Membership test used during CN execution: free sets admit
        anything, non-free sets require the exact keyword subset."""
        if not subset:
            return True
        return self._matched[table].get(pk, frozenset()) == frozenset(subset)
