"""Service throughput: QPS cold vs. cached vs. batched on synthetic DBLP.

Three ways of pushing the same mixed query stream through a
:class:`repro.service.QueryService`:

* **cold** — every request bypasses the result cache (``use_cache=False``):
  the raw sequential search rate.
* **cached** — the same stream with the cache warm: the steady-state a
  traffic mix with repeats converges to.
* **batched** — ``search_many`` over the cold stream with 8 workers.
  Search is pure Python holding the GIL, so batching is about overlap
  and deadline handling, not a core-count speedup; the table makes that
  honest rather than hiding it.

Loose shape assertions (cache >= 10x cold, batch == sequential results)
keep a silently broken service layer from benchmarking plausibly.

A second experiment compares the snapshot **storage tiers**
(docs/STORAGE.md): warmup cost of a full compressed deserialization
against a mapped (``np.memmap``) load that materializes only the pin
set, and the steady-state query rate of both tiers once warm.  The
bars: mapped warmup at least 5x faster, steady-state QPS within 10% —
the tier trades nothing at runtime, only at load.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.common import Report, build_bench, fmt
from repro.service import QueryRequest, QueryService

from conftest import as_float, cell, emit_json, run_report

NUM_REQUESTS = 50
SEED_TERMS = 8


def _mixed_queries(engine) -> list[str]:
    """Mid-frequency two-keyword queries, deterministic from the index.

    Degrades to fewer distinct queries on a scaled-down dataset
    (REPRO_SCALE < 1) rather than indexing past the term list.
    """
    mids = [
        term
        for term, freq in engine.index.terms_by_frequency()
        if 5 <= freq <= 60
    ]
    pairs = min(SEED_TERMS, len(mids) // 2)
    assert pairs > 0, (
        f"dataset too small: only {len(mids)} mid-frequency terms; "
        f"raise REPRO_SCALE"
    )
    return [f"{mids[i]} {mids[i + pairs]}" for i in range(pairs)]


def run_throughput() -> Report:
    bench = build_bench("dblp", 0.4)
    queries = _mixed_queries(bench.engine)
    stream = [queries[i % len(queries)] for i in range(NUM_REQUESTS)]

    with QueryService(cache_capacity=256, max_workers=8) as service:
        service.register_engine("dblp", bench.engine)

        def requests(use_cache: bool) -> list[QueryRequest]:
            return [
                QueryRequest("dblp", query, k=5, use_cache=use_cache)
                for query in stream
            ]

        start = time.perf_counter()
        cold = [service.search(r) for r in requests(use_cache=False)]
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        cached = [service.search(r) for r in requests(use_cache=True)]
        cached_s = time.perf_counter() - start

        start = time.perf_counter()
        batched = service.search_many(requests(use_cache=False))
        batched_s = time.perf_counter() - start

        hit_rate = service.metrics()["cache_hit_rate"]

    assert all(r.ok for r in cold + cached + batched)
    for sequential, batch in zip(cold, batched):
        assert batch.result.scores() == sequential.result.scores()
        assert batch.result.signatures() == sequential.result.signatures()

    report = Report(
        experiment="service-throughput",
        title=f"{NUM_REQUESTS} mixed queries over {len(queries)} distinct "
        f"(synthetic DBLP, k=5)",
        headers=["mode", "seconds", "QPS", "vs cold"],
    )
    for mode, label, seconds in (
        ("cold", "cold (uncached)", cold_s),
        ("cached", "cached", cached_s),
        ("batched", "batched x8 (uncached)", batched_s),
    ):
        emit_json(
            {
                "experiment": "service-throughput",
                "mode": mode,
                "requests": NUM_REQUESTS,
                "seconds": seconds,
                "qps": NUM_REQUESTS / seconds,
                "speedup_vs_cold": cold_s / seconds,
            }
        )
        report.rows.append(
            [
                label,
                fmt(seconds, 3),
                fmt(NUM_REQUESTS / seconds),
                fmt(cold_s / seconds, 2),
            ]
        )
    report.notes.append(
        f"cache hit rate over the run: {hit_rate:.2f}; cached mode repeats "
        f"the cold stream, so steady-state hit rate approaches 1"
    )
    report.notes.append(
        "batched uses threads: pure-Python search holds the GIL, so expect "
        "overlap benefits (and executor overhead), not a core-count speedup"
    )
    return report


def run_storage_tiers() -> Report:
    import tempfile

    from repro.core.engine import KeywordSearchEngine
    from repro.service.snapshot import load_snapshot, save_engine

    # Full scale: the tiers differ by a per-load constant (pin-set
    # materialization), so the speedup ratio is only meaningful when the
    # compressed deserialization is big enough to dominate it.
    bench = build_bench("dblp", 1.0)
    queries = _mixed_queries(bench.engine)
    stream = [queries[i % len(queries)] for i in range(NUM_REQUESTS)]

    with tempfile.TemporaryDirectory() as tmp:
        v1_path = Path(tmp) / "dblp.snap"
        v2_path = Path(tmp) / "dblp.snap.v2"
        save_engine(v1_path, bench.engine)
        save_engine(v2_path, bench.engine, format="mapped")

        def best_of(loader, repeats: int = 5):
            # Best-of-N: a load is cheap to repeat and the *minimum* is
            # the least-noisy estimator of its cost.
            best_s, best = float("inf"), None
            for _ in range(repeats):
                start = time.perf_counter()
                loaded = loader()
                elapsed = time.perf_counter() - start
                if elapsed < best_s:
                    best_s, best = elapsed, loaded
            return best_s, best

        ram_warm_s, (ram_graph, ram_index) = best_of(
            lambda: load_snapshot(v1_path, storage_mode="ram")
        )
        map_warm_s, (map_graph, map_index) = best_of(
            lambda: load_snapshot(v2_path, storage_mode="mapped")
        )

        engines = {
            "ram": KeywordSearchEngine(ram_graph, ram_index),
            "mapped": KeywordSearchEngine(map_graph, map_index),
        }
        answers = {}
        for engine in engines.values():
            for query in stream:  # fault the working set in before timing
                engine.search(query, k=5)
        # Interleave the tiers' timed passes (machine-load drift over a
        # minutes-long run would otherwise bias whichever tier is
        # measured last) and keep each *query's* minimum across passes:
        # a whole-pass minimum only filters noise if an entire pass
        # dodges it at once, per-query minimums filter it per query.
        best = {tier: [float("inf")] * len(stream) for tier in engines}
        for _ in range(3):
            for tier, engine in engines.items():
                timed = []
                for j, query in enumerate(stream):
                    start = time.perf_counter()
                    timed.append(engine.search(query, k=5))
                    elapsed = time.perf_counter() - start
                    best[tier][j] = min(best[tier][j], elapsed)
                answers[tier] = timed
        qps = {tier: NUM_REQUESTS / sum(mins) for tier, mins in best.items()}

    # Identical answers, not just similar speed.
    for ram_result, map_result in zip(answers["ram"], answers["mapped"]):
        assert map_result.scores() == ram_result.scores()
        assert map_result.signatures() == ram_result.signatures()
    storage = map_graph.storage
    report = Report(
        experiment="storage-tiers",
        title=f"snapshot warmup + steady state, {NUM_REQUESTS} queries "
        f"(synthetic DBLP, k=5)",
        headers=["tier", "warmup s", "steady QPS", "resident"],
    )
    for tier, warm_s in (("ram", ram_warm_s), ("mapped", map_warm_s)):
        resident = (
            f"{storage.resident_bytes / 1024:.0f} KiB est"
            if tier == "mapped"
            else "full"
        )
        emit_json(
            {
                "experiment": "storage-tiers",
                "tier": tier,
                "warmup_seconds": warm_s,
                "qps": qps[tier],
                "warmup_speedup": ram_warm_s / map_warm_s,
            }
        )
        report.rows.append(
            [tier, fmt(warm_s, 4), fmt(qps[tier]), resident]
        )
    report.notes.append(
        f"mapped warmup {ram_warm_s / map_warm_s:.1f}x faster than compressed "
        f"deserialization (pins: {storage.pinned_nodes} rows, "
        f"{storage.pinned_terms} posting lists)"
    )
    report.notes.append(
        "steady-state rates converge once the query working set is "
        "materialized; the tier trades load cost, not query cost"
    )
    return report


def test_service_throughput(benchmark):
    report = run_report(benchmark, run_throughput)
    qps_cold = as_float(cell(report, 0, 2))
    qps_cached = as_float(cell(report, 1, 2))
    assert qps_cold > 0
    # The acceptance bar: repeated queries answered from cache must be
    # at least 10x faster than uncached search.
    assert qps_cached >= 10 * qps_cold


def test_storage_tier_warmup_and_qps(benchmark):
    report = run_report(benchmark, run_storage_tiers)
    ram_warm = as_float(cell(report, 0, 1))
    map_warm = as_float(cell(report, 1, 1))
    ram_qps = as_float(cell(report, 0, 2))
    map_qps = as_float(cell(report, 1, 2))
    # The acceptance bars: a mapped load must skip nearly all of the
    # deserialization work, and must cost nothing at steady state.
    assert map_warm * 5 <= ram_warm, (
        f"mapped warmup {map_warm:.4f}s not 5x faster than "
        f"compressed deserialization {ram_warm:.4f}s"
    )
    assert map_qps >= 0.9 * ram_qps, (
        f"mapped steady-state {map_qps:.1f} QPS more than 10% below "
        f"ram {ram_qps:.1f} QPS"
    )


if __name__ == "__main__":
    print(run_throughput().render())
    print(run_storage_tiers().render())
