"""Telemetry overhead: QPS with tracing and profiling on vs off.

Two observability bars:

* end-to-end tracing at the default sampling (``trace_every_n_pops=0``
  — span per stage, no per-pop trajectory sampling) must cost the
  serving path **less than 5% QPS** against the untraced arm.  Spans
  are a handful of dict writes around a graph search that costs
  milliseconds; if this budget ever fails, a span crept into a per-pop
  loop;
* the always-on sampling profiler at its default rate
  (:data:`repro.telemetry.profile.DEFAULT_INTERVAL`) must cost **less
  than 3% QPS** on top of the traced arm.  The sampler reads
  ``sys._current_frames`` from its own thread — the serving thread
  only pays for brief GIL steals; if this fails, the sampler's fold
  path got expensive;
* per-query resource accounting (cost counters + fingerprint sketch,
  explain **off**) must cost **less than 3% QPS** against the untraced
  arm.  The counters are plain int adds on paths that already touch
  the stats object and the sketch is one dict update per request; if
  this fails, accounting leaked into a per-pop loop.

The workload: ``NUM_QUERIES`` uncached single-shot searches against a
thread-tier ``QueryService`` over synthetic DBLP, a pool of
mid-frequency multi-keyword queries sampled the same way as
``bench_search_micro``.  All arms run the identical query stream;
arms alternate rounds and each arm scores its best round, so a noisy
neighbour slows both or neither.

A sample span tree from the traced arm is written to
``TELEMETRY_SPAN_OUT`` (JSON) when set — CI uploads it as an artifact,
so every PR carries a real trace to eyeball.

Env knobs: ``REPRO_SCALE`` scales the dataset; ``BENCH_JSON_OUT``
appends JSON rows; ``TELEMETRY_SPAN_OUT`` writes the sample span tree;
``BENCH_ACCOUNTING_OUT`` writes the accounting arm's workload-sketch
export (JSON) — CI uploads it so every PR carries a real
``/debug/queries`` payload to eyeball.

Run directly (``python benchmarks/bench_telemetry_overhead.py``) or
under pytest-benchmark.
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.common import Report, build_bench, fmt, workload_rng
from repro.service import QueryRequest, QueryService

from conftest import as_float, cell, emit_json, run_report

NUM_QUERIES = 120
ROUNDS = 3
QUERY_POOL = 8
#: The acceptance bar: tracing may cost at most this QPS fraction.
MAX_OVERHEAD = 0.05
#: The profiler bar: sampling at the default rate may cost at most
#: this QPS fraction *on top of* the traced arm.
PROFILER_MAX_OVERHEAD = 0.03
#: The accounting bar: cost counters + the fingerprint sketch (explain
#: off) may cost at most this QPS fraction against the untraced arm.
ACCOUNTING_MAX_OVERHEAD = 0.03

#: Arm name -> QueryService telemetry kwargs.  Every arm isolates one
#: feature against "untraced" (the all-off calibration row perf_trend
#: normalizes by), so each budget measures its own feature only.
ARMS = {
    "untraced": {"tracing": False, "accounting": False},
    "accounting": {"tracing": False, "accounting": True},
    "traced": {"tracing": True, "accounting": False},
    "profiled": {"tracing": True, "profiling": True, "accounting": False},
}


def _query_pool(bench) -> list[list[str]]:
    rng = workload_rng(31337)
    queries: list[list[str]] = []
    attempts = 0
    while len(queries) < QUERY_POOL and attempts < 200:
        attempts += 1
        query = bench.generator.sample_query(
            rng,
            n_keywords=3,
            result_size=4,
            band_combo=("T", "S", "L"),
        )
        if query is not None:
            queries.append(list(query.keywords))
    assert len(queries) >= 2, "dataset too small; raise REPRO_SCALE"
    return queries


def _run_round(service: QueryService, queries: list[list[str]]) -> float:
    """One timed round of the fixed query stream; returns QPS."""
    start = time.perf_counter()
    for i in range(NUM_QUERIES):
        response = service.search(
            QueryRequest("dblp", queries[i % len(queries)], use_cache=False)
        )
        response.raise_for_error()
    return NUM_QUERIES / (time.perf_counter() - start)


def _dump_sample_span_tree(service: QueryService, queries: list[list[str]]) -> None:
    path = os.environ.get("TELEMETRY_SPAN_OUT")
    if not path:
        return
    response = service.search(QueryRequest("dblp", queries[0], use_cache=False))
    response.raise_for_error()
    tree = service.trace(response.trace_id)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(tree, handle, indent=2)


def _dump_accounting(service: QueryService) -> None:
    path = os.environ.get("BENCH_ACCOUNTING_OUT")
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(service.query_stats(), handle, indent=2)


def run_telemetry_overhead() -> Report:
    bench = build_bench("dblp", 0.4)
    queries = _query_pool(bench)
    arms = {}
    for mode, kwargs in ARMS.items():
        service = QueryService(max_workers=1, **kwargs)
        service.register_engine("dblp", bench.engine)
        arms[mode] = {"service": service, "qps": []}
        _run_round(service, queries)  # warm the engine-side caches

    # Alternate rounds so drift hits every arm equally.
    for _ in range(ROUNDS):
        for arm in arms.values():
            arm["qps"].append(_run_round(arm["service"], queries))

    _dump_sample_span_tree(arms["traced"]["service"], queries)
    _dump_accounting(arms["accounting"]["service"])
    for arm in arms.values():
        arm["service"].close(wait=False)

    baseline = max(arms["untraced"]["qps"])
    accounting = max(arms["accounting"]["qps"])
    traced = max(arms["traced"]["qps"])
    profiled = max(arms["profiled"]["qps"])
    overhead = 1.0 - traced / baseline
    profiler_overhead = 1.0 - profiled / traced
    accounting_overhead = 1.0 - accounting / baseline

    report = Report(
        experiment="telemetry-overhead",
        title=(
            f"{NUM_QUERIES} uncached searches x {ROUNDS} rounds on "
            f"synthetic DBLP ({bench.engine.graph.num_nodes} nodes): "
            f"tracing and profiling on vs off"
        ),
        headers=["mode", "best QPS", "rounds"],
    )
    for mode, kwargs in ARMS.items():
        qps = max(arms[mode]["qps"])
        row = {
            "experiment": "telemetry-overhead",
            "mode": mode,
            "tracing": kwargs.get("tracing", False),
            "profiling": kwargs.get("profiling", False),
            "accounting": kwargs.get("accounting", False),
            "queries": NUM_QUERIES,
            "rounds": ROUNDS,
            "qps": qps,
            "qps_rounds": arms[mode]["qps"],
        }
        emit_json(row)
        report.rows.append(
            [
                mode,
                fmt(qps),
                ", ".join(fmt(value) for value in row["qps_rounds"]),
            ]
        )
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} "
        f"budget ({traced:.0f} vs {baseline:.0f} QPS)"
    )
    assert profiler_overhead < PROFILER_MAX_OVERHEAD, (
        f"profiler overhead {profiler_overhead:.1%} exceeds the "
        f"{PROFILER_MAX_OVERHEAD:.0%} budget "
        f"({profiled:.0f} vs {traced:.0f} QPS)"
    )
    assert accounting_overhead < ACCOUNTING_MAX_OVERHEAD, (
        f"accounting overhead {accounting_overhead:.1%} exceeds the "
        f"{ACCOUNTING_MAX_OVERHEAD:.0%} budget "
        f"({accounting:.0f} vs {baseline:.0f} QPS)"
    )
    report.notes.append(
        f"tracing QPS overhead at default sampling: {overhead:+.1%} "
        f"(budget < {MAX_OVERHEAD:.0%})"
    )
    report.notes.append(
        f"profiler QPS overhead at the default rate: "
        f"{profiler_overhead:+.1%} (budget < {PROFILER_MAX_OVERHEAD:.0%})"
    )
    report.notes.append(
        f"accounting QPS overhead with explain off: "
        f"{accounting_overhead:+.1%} (budget < {ACCOUNTING_MAX_OVERHEAD:.0%})"
    )
    report.notes.append(
        f"dataset scale knob REPRO_SCALE={os.environ.get('REPRO_SCALE', '1.0')}"
    )
    return report


def test_telemetry_overhead(benchmark):
    report = run_report(benchmark, run_telemetry_overhead)
    for row in range(len(report.rows)):
        assert as_float(cell(report, row, 1)) > 0


if __name__ == "__main__":
    print(run_telemetry_overhead().render())
