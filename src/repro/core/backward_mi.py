"""Multi-Iterator Backward Expanding search (paper Section 3; BANKS-I).

The baseline algorithm of Bhalotia et al. (ICDE 2002), as described in
Section 3 of the paper: one single-source-shortest-path iterator per
keyword node, each traversing edges *in reverse*; the iterator whose
next frontier node is nearest to its origin is scheduled; a node settled
by at least one iterator of every keyword is the root of answer trees —
one per combination of origins — which pass the minimality filter and
are released through the Section 4.5 bound, exactly like the other
algorithms so the comparison isolates the search strategy.

This is the algorithm whose time/space degrade when a keyword matches
many nodes (many iterators) or the search meets a large fan-in hub (huge
frontiers) — the motivation for Bidirectional search.
"""

from __future__ import annotations

import itertools
from math import inf
from typing import Optional, Sequence

from repro.core.answer import SearchResult
from repro.core.driver import BaseSearch, nra_edge_bound
from repro.core.heaps import LazyMinHeap
from repro.core.params import SearchParams
from repro.core.scoring import Scorer
from repro.core.stats import SearchStats

__all__ = ["BackwardExpandingSearch", "ShortestPathIterator"]


class ShortestPathIterator:
    """Dijkstra from one origin over the reversed search graph.

    ``settled[v]`` is the final distance of the best path ``v -> origin``
    in forward direction; ``succ[v]`` the next hop on it.  Expansion
    stops at ``dmax`` hops from the origin.
    """

    def __init__(
        self,
        graph,
        origin: int,
        keyword_indices: tuple[int, ...],
        stats: SearchStats,
        csr=None,
    ) -> None:
        self.graph = graph
        self.origin = origin
        self.keyword_indices = keyword_indices
        self.settled: dict[int, float] = {}
        self.succ: dict[int, tuple[int, float]] = {}
        self._hops: dict[int, int] = {origin: 0}
        self._frontier = LazyMinHeap()
        self._frontier.push(origin, 0.0)
        self._stats = stats
        stats.heap_ops += 1
        # Optional CSR fast path: a dense settled mask lets the in-edge
        # scan prefilter settled neighbours in one vectorized mask
        # instead of a dict probe per edge.  Same edges, same order,
        # same float64 arithmetic — bit-identical to the tuple loop.
        self._csr = csr
        if csr is not None:
            import numpy as np

            self._settled_mask = np.zeros(csr.n, dtype=bool)
        stats.touch()

    def peek(self) -> Optional[float]:
        """Distance of the next node to settle, or None when exhausted."""
        return self._frontier.peek_priority()

    #: Rows below this size expand through the plain tuple loop even in
    #: CSR mode: numpy slicing only pays for itself on hub fan-ins.
    VECTOR_ROW_MIN = 32

    def settle_next(self, dmax: int) -> Optional[int]:
        """Settle and return the nearest frontier node (one getnext() step)."""
        try:
            node, dist = self._frontier.pop()
        except IndexError:
            return None
        self.settled[node] = dist
        csr = self._csr
        if csr is not None:
            self._settled_mask[node] = True
            if self._hops[node] < dmax:
                lo = int(csr.in_indptr[node])
                hi = int(csr.in_indptr[node + 1])
                if hi - lo >= self.VECTOR_ROW_MIN:
                    self._expand_csr(node, dist, lo, hi)
                else:
                    self._expand_scalar(node, dist)
            return node
        if self._hops[node] < dmax:
            self._expand_scalar(node, dist)
        return node

    def _expand_scalar(self, node: int, dist: float) -> None:
        for u, w, _ in self.graph.in_edges(node):
            self._stats.explore_edge()
            if u in self.settled:
                continue
            nd = dist + w
            current = self._frontier.get_priority(u)
            if current is None:
                self._stats.touch()
            elif nd >= current:
                continue
            self.succ[u] = (node, w)
            self._hops[u] = self._hops[node] + 1
            self._frontier.push(u, nd)
            self._stats.heap_ops += 1

    def _expand_csr(self, node: int, dist: float, lo: int, hi: int) -> None:
        """CSR row scan: count every edge, relax unsettled neighbours in
        row order with the exact arithmetic of the tuple loop."""
        csr = self._csr
        self._stats.explore_edge(hi - lo)
        u_arr = csr.in_src[lo:hi]
        keep = ~self._settled_mask[u_arr]
        if not keep.any():
            return
        hops = self._hops[node] + 1
        frontier = self._frontier
        for u, w in zip(
            u_arr[keep].tolist(), csr.in_w[lo:hi][keep].tolist()
        ):
            nd = dist + w
            current = frontier.get_priority(u)
            if current is None:
                self._stats.touch()
            elif nd >= current:
                continue
            self.succ[u] = (node, w)
            self._hops[u] = hops
            frontier.push(u, nd)
            self._stats.heap_ops += 1

    def path_to_origin(self, node: int) -> tuple[int, ...]:
        """The settled path ``node -> ... -> origin`` (forward direction)."""
        path = [node]
        while path[-1] != self.origin:
            nxt, _ = self.succ[path[-1]]
            path.append(nxt)
        return tuple(path)


class BackwardExpandingSearch(BaseSearch):
    """MI-Backward: the multi-iterator baseline."""

    algorithm = "mi-backward"

    def __init__(
        self,
        graph,
        keywords: Sequence[str],
        keyword_sets: Sequence[frozenset[int]],
        *,
        params: Optional[SearchParams] = None,
        scorer: Optional[Scorer] = None,
        token=None,
    ) -> None:
        super().__init__(
            graph, keywords, keyword_sets, params=params, scorer=scorer, token=token
        )
        # One iterator per *node* in S = union of the S_i; an origin
        # matching several keywords serves them all (Section 3).
        origin_keywords: dict[int, list[int]] = {}
        for i, nodes in enumerate(self.keyword_sets):
            for node in nodes:
                origin_keywords.setdefault(node, []).append(i)
        csr = self._maybe_csr(len(origin_keywords))
        if csr is not None:
            from repro.core.kernels.engines import EmitGate

            self._emit_gate: Optional[EmitGate] = EmitGate(self)
        else:
            self._emit_gate = None
        self._iterators = [
            ShortestPathIterator(graph, origin, tuple(indices), self.stats, csr=csr)
            for origin, indices in sorted(origin_keywords.items())
        ]
        # visited[v][i] -> iterators (by index) that settled v for keyword i.
        self._visited: dict[int, list[list[int]]] = {}
        self._best_dist: dict[int, list[float]] = {}
        self._combos_emitted: dict[int, int] = {}
        self._schedule = LazyMinHeap()
        for idx, iterator in enumerate(self._iterators):
            peek = iterator.peek()
            if peek is not None:
                self._schedule.push(idx, peek)

    # ------------------------------------------------------------------
    def _maybe_csr(self, num_origins: int):
        """The shared CSR snapshot for iterator fast paths, or None.

        MI keeps its getnext() schedule untouched under every backend
        (the paper's baseline semantics); kernel backends only swap the
        per-settle in-edge scan for a CSR row scan.  Gated by the dense
        settled-mask footprint (one byte per node per iterator).
        """
        from repro.core.kernels import graph_csr, resolve_backend

        if resolve_backend(self.params.expansion_backend) == "python":
            return None
        if num_origins * self.graph.num_nodes > 64 * 1024 * 1024:
            return None
        return graph_csr(self.graph)

    def run(self) -> SearchResult:
        while self._schedule and not self._done and not self._budget_exhausted():
            if self._cancelled():
                break
            idx, _ = self._schedule.pop()
            iterator = self._iterators[idx]
            node = iterator.settle_next(self.params.dmax)
            if node is not None:
                self.stats.explore()
                self.stats.pops_in += 1
                self._pops_since_flush += 1
                self._record_visit(node, idx)
                self._profile_tick()
            peek = iterator.peek()
            if peek is not None:
                self._schedule.push(idx, peek)
            if self._should_flush():
                self._flush(self._edge_bound())
        return self._finish()

    def _frontier_sizes(self) -> dict[str, int]:
        return {"iterators": len(self._schedule)}

    # ------------------------------------------------------------------
    def _record_visit(self, node: int, iterator_idx: int) -> None:
        """Register a settle and emit the *new* origin combinations it
        completes (Section 3's visited-list intersection)."""
        iterator = self._iterators[iterator_idx]
        slots = self._visited.setdefault(node, [[] for _ in range(self.k)])
        best = self._best_dist.setdefault(node, [inf] * self.k)
        dist = iterator.settled[node]
        for i in iterator.keyword_indices:
            slots[i].append(iterator_idx)
            if dist < best[i]:
                best[i] = dist
        if any(not slot for slot in slots):
            return
        for i in iterator.keyword_indices:
            self._emit_new_combos(node, slots, i, iterator_idx)

    def _emit_new_combos(
        self, node: int, slots: list[list[int]], new_slot: int, new_iterator: int
    ) -> None:
        """Emit combinations that place the newly-arrived iterator in
        ``new_slot``; older combinations were emitted on earlier visits.
        Capped by ``max_combos_per_node`` to bound the cross-product."""
        cap = self.params.max_combos_per_node
        pools = [
            slot if i != new_slot else [new_iterator] for i, slot in enumerate(slots)
        ]
        for combo in itertools.product(*pools):
            emitted = self._combos_emitted.get(node, 0)
            if emitted >= cap:
                return
            self._combos_emitted[node] = emitted + 1
            self._emit_combo(node, combo)

    def _emit_combo(self, node: int, combo: tuple[int, ...]) -> None:
        iterators = self._iterators
        dists = [iterators[idx].settled[node] for idx in combo]
        gate = self._emit_gate
        if gate is not None and gate.blocks(float(sum(dists))):
            self.stats.gate_skips += 1
            return
        paths = [iterators[idx].path_to_origin(node) for idx in combo]
        self._emit_tree(node, paths, dists)

    # ------------------------------------------------------------------
    def _edge_bound(self) -> float:
        """Section 4.5 bound: ``m_i`` is the nearest next-settle distance
        among keyword-i iterators; exhausted keywords contribute inf
        (no new node can be reached from them)."""
        ms = [inf] * self.k
        for idx, _ in self._schedule.items():
            iterator = self._iterators[idx]
            peek = iterator.peek()
            if peek is None:
                continue
            for i in iterator.keyword_indices:
                if peek < ms[i]:
                    ms[i] = peek
        incomplete = (
            vector
            for vector in self._best_dist.values()
            if any(d == inf for d in vector)
        )
        return nra_edge_bound(ms, incomplete)
