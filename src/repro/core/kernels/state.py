"""Dense (array-backed) search state for the batched expansion engines.

:class:`DensePathState` is the flat-array counterpart of
:class:`~repro.core.pathtable.PathTable`: per-keyword ``dist``/``sp``
state over all nodes plus the ATTACH cascade, with the explored-
parents map ``P`` represented *implicitly* by two membership sets
instead of a dict-of-dicts — an edge ``(u, v)`` counts as explored
exactly when ``v`` was expanded through its in-edges
(``expanded_in``) or ``u`` through its out-edges (``expanded_out``),
because the batched engines always explore a node's edge list in
full.  Cascades walk the graph's deduplicated parent rows filtered by
those sets.

Storage is two-tier: python row lists (``dist_rows`` et al.) are the
authoritative store — the scalar hot path (recheck, cascade, emit,
path building) reads and writes them at python-float speed — while a
numpy matrix snapshot (``dist``) feeds the bulk candidate kernels and
the vectorized frontier/bound math.  :meth:`drain_changed` is the
synchronization point: it flushes every changed column into the
snapshot, and the engines call it between candidate application and
any snapshot read, so kernels always see batch-start state (the
snapshot-prefilter contract) and priorities/bounds always see current
state.

:class:`DenseActivationState` mirrors
:class:`~repro.core.activation.ActivationTable` the same way, sharing
the explored sets so ACTIVATE flows along explored edges only.

The candidate *computation* differs per backend (scalar / numpy /
numba kernels in :mod:`repro.core.kernels.expand`); the *application*
here — recheck, set, cascade — is plain python shared by every
backend, which is what makes kernel backends bit-identical to each
other by construction.
"""

from __future__ import annotations

import heapq
from math import inf, isinf
from typing import Callable, Sequence

import numpy as np

from repro.core.kernels.csr import GraphCSR, norm_list, parent_rows

__all__ = ["DensePathState", "DenseActivationState"]


class DensePathState:
    """Per-keyword distance/successor state with upward propagation."""

    def __init__(self, csr: GraphCSR, keyword_sets: Sequence[frozenset[int]]) -> None:
        self.csr = csr
        self.keyword_sets = tuple(frozenset(s) for s in keyword_sets)
        self.k = len(self.keyword_sets)
        if self.k == 0:
            raise ValueError("at least one keyword set is required")
        n = csr.n
        # numpy snapshot for the candidate kernels; synced in drain_changed.
        self.dist = np.full((self.k, n), inf, dtype=np.float64)
        # python rows: the authoritative store the scalar path works on.
        self.dist_rows: list[list[float]] = [[inf] * n for _ in range(self.k)]
        self.sp_child: list[list[int]] = [[-1] * n for _ in range(self.k)]
        self.sp_w: list[list[float]] = [[0.0] * n for _ in range(self.k)]
        self.finite: list[int] = [0] * n
        # Explored-edge masks as python sets: the cascades probe
        # membership per tiny parent row, where set lookups beat numpy
        # fancy indexing by an order of magnitude.
        self.expanded_in: set[int] = set()
        self.expanded_out: set[int] = set()
        self._par = parent_rows(csr)
        self._changed: set[int] = set()
        #: Rows written by ATTACH cascades — harvested into
        #: ``SearchStats.cascade_touches`` by the owning engine.
        self.cascade_touches = 0

    # ------------------------------------------------------------------
    # seeding / queries
    # ------------------------------------------------------------------
    def seed_all(self) -> list[int]:
        """``dist = 0`` for every keyword node; returns the sorted union."""
        seeds: set[int] = set()
        for i, nodes in enumerate(self.keyword_sets):
            row = self.dist_rows[i]
            for node in nodes:
                if row[node] > 0.0:
                    if isinf(row[node]):
                        self.finite[node] += 1
                    row[node] = 0.0
                    self.dist[i, node] = 0.0
            seeds.update(nodes)
        return sorted(seeds)

    def is_complete(self, node: int) -> bool:
        return self.finite[node] == self.k

    def min_dist_of(self, nodes: np.ndarray) -> np.ndarray:
        """Nearest-keyword distance per node (SI-Backward's priority).

        Reads the snapshot — callers drain first.
        """
        if len(nodes) == 0:
            return np.zeros(0, dtype=np.float64)
        return self.dist[:, nodes].min(axis=0)

    # ------------------------------------------------------------------
    # Section 4.5 bound over dense state (snapshot — drained at flush)
    # ------------------------------------------------------------------
    def frontier_minima(self, nodes: np.ndarray) -> np.ndarray:
        """Per-keyword minimum known distance over the frontier nodes."""
        if len(nodes) == 0:
            return np.full(self.k, inf, dtype=np.float64)
        return self.dist[:, nodes].min(axis=1)

    def nra_bound(self, ms: np.ndarray) -> float:
        """NRA refinement over seen-but-incomplete nodes (vectorized
        equivalent of :func:`repro.core.driver.nra_edge_bound`)."""
        if bool(np.isinf(ms).all()):
            return inf
        best = float(ms.sum())
        known = np.isfinite(self.dist).sum(axis=0)
        mask = (known > 0) & (known < self.k)
        if bool(mask.any()):
            vectors = np.where(
                np.isinf(self.dist[:, mask]), ms[:, None], self.dist[:, mask]
            )
            best = min(best, float(vectors.sum(axis=0).min()))
        return best

    # ------------------------------------------------------------------
    # candidate application (shared scalar path — all backends)
    # ------------------------------------------------------------------
    def apply_dist_candidates(
        self,
        tgt: np.ndarray,
        src: np.ndarray,
        w: np.ndarray,
        e_idx: np.ndarray,
        i_idx: np.ndarray,
        nd: np.ndarray,
        emit: Callable[[int], None],
    ) -> None:
        """Apply prefiltered relaxation candidates in canonical order.

        Each candidate is an (edge, keyword) pair whose tentative
        distance beat a snapshot taken at batch start; it is rechecked
        against the live rows (earlier candidates or their cascades
        may have done the work already), applied, cascaded upward, and
        any node that completes is handed to ``emit``.
        """
        if len(e_idx) == 0:
            return
        rows = self.dist_rows
        t_list = tgt[e_idx].tolist()
        s_list = src[e_idx].tolist()
        w_list = w[e_idx].tolist()
        i_list = i_idx.tolist()
        nd_list = nd.tolist()
        for u, child, wt, i, d in zip(t_list, s_list, w_list, i_list, nd_list):
            if d < rows[i][u]:
                completions: set[int] = set()
                self._set_dist(u, i, d, child, wt, completions)
                self._propagate_up(u, i, completions)
                for node in sorted(completions):
                    emit(node)

    def _set_dist(
        self,
        node: int,
        i: int,
        value: float,
        child: int,
        weight: float,
        completions: set[int],
    ) -> None:
        self.cascade_touches += 1
        row = self.dist_rows[i]
        if isinf(row[node]):
            self.finite[node] += 1
            if self.finite[node] == self.k:
                completions.add(node)
        elif self.finite[node] == self.k:
            completions.add(node)
        row[node] = value
        self.sp_child[i][node] = child
        self.sp_w[i][node] = weight
        self._changed.add(node)

    def _propagate_up(self, start: int, i: int, completions: set[int]) -> None:
        """ATTACH: best-first push of an improved ``dist[·][i]`` through
        the explored-parent links (parent rows filtered by the sets)."""
        row = self.dist_rows[i]
        par = self._par
        xin = self.expanded_in
        xout = self.expanded_out
        sp_child = self.sp_child[i]
        sp_w = self.sp_w[i]
        finite = self.finite
        changed = self._changed
        k = self.k
        touches = 0
        heap = [(row[start], start)]
        while heap:
            d, x = heapq.heappop(heap)
            if d > row[x]:
                continue  # stale entry
            prow = par[x]
            if not prow:
                continue
            unmasked = x in xin
            for parent, wt in prow:
                if not unmasked and parent not in xout:
                    continue
                ndist = d + wt
                if ndist < row[parent]:
                    # _set_dist, inlined: this loop runs once per
                    # improvement event and the call overhead shows.
                    if row[parent] == inf:
                        finite[parent] += 1
                        if finite[parent] == k:
                            completions.add(parent)
                    elif finite[parent] == k:
                        completions.add(parent)
                    row[parent] = ndist
                    sp_child[parent] = x
                    sp_w[parent] = wt
                    changed.add(parent)
                    touches += 1
                    heapq.heappush(heap, (ndist, parent))
        self.cascade_touches += touches

    def drain_changed(self) -> np.ndarray:
        """Nodes whose distances changed since the last drain, sorted —
        and the snapshot-sync point: their columns are copied from the
        python rows into the numpy matrix."""
        if not self._changed:
            return np.zeros(0, dtype=np.int64)
        out = np.fromiter(self._changed, dtype=np.int64, count=len(self._changed))
        self._changed.clear()
        out.sort()
        nodes = out.tolist()
        for i in range(self.k):
            row = self.dist_rows[i]
            self.dist[i, out] = [row[x] for x in nodes]
        return out

    # ------------------------------------------------------------------
    # tree extraction (mirrors PathTable.build_paths)
    # ------------------------------------------------------------------
    def build_paths(self, root: int) -> tuple[list[tuple[int, ...]], list[float]]:
        if not self.is_complete(root):
            raise ValueError(f"node {root} has no path to every keyword")
        paths: list[tuple[int, ...]] = []
        weights: list[float] = []
        limit = self.csr.n + 1
        for i in range(self.k):
            row = self.dist_rows[i]
            children = self.sp_child[i]
            sp_w = self.sp_w[i]
            node = root
            path = [node]
            total = 0.0
            steps = 0
            while row[node] > 0.0:
                total += sp_w[node]
                node = children[node]
                path.append(node)
                steps += 1
                if steps > limit:  # pragma: no cover - defensive
                    raise RuntimeError("sp pointer cycle detected")
            paths.append(tuple(path))
            weights.append(total)
        return paths, weights


class DenseActivationState:
    """Array-backed spreading activation sharing the explored sets."""

    def __init__(
        self,
        csr: GraphCSR,
        keyword_sets: Sequence[frozenset[int]],
        path_state: DensePathState,
        *,
        mu: float = 0.5,
        combine: str = "max",
        min_contribution: float = 1e-9,
    ) -> None:
        self.csr = csr
        self.keyword_sets = tuple(frozenset(s) for s in keyword_sets)
        self.k = len(self.keyword_sets)
        self.mu = mu
        self.combine = combine
        self.min_contribution = min_contribution
        self._path = path_state
        # numpy snapshot for the spread kernels; synced in drain_changed.
        self.act = np.zeros((self.k, csr.n), dtype=np.float64)
        # python rows: authoritative store for the scalar path.
        self.act_rows: list[list[float]] = [[0.0] * csr.n for _ in range(self.k)]
        # live per-node totals (the frontier priorities) — numpy so the
        # engines can gather batch priorities directly.
        self.total = np.zeros(csr.n, dtype=np.float64)
        self._par = parent_rows(csr)
        self._norm = norm_list(csr)
        self._changed: set[int] = set()
        #: Rows written by ACTIVATE cascades — harvested into
        #: ``SearchStats.cascade_touches`` by the owning engine.
        self.cascade_touches = 0

    # ------------------------------------------------------------------
    def seed_all(self) -> None:
        """Seed ``a(u, i) = prestige(u) / |S_i|`` per keyword node."""
        prestige = self.csr.prestige
        for i, nodes in enumerate(self.keyword_sets):
            if not nodes:
                continue
            size = len(nodes)
            row = self.act_rows[i]
            for node in sorted(nodes):
                seed = float(prestige[node]) / size
                current = row[node]
                if self.combine == "sum":
                    merged = current + (seed if seed > self.min_contribution else 0.0)
                else:
                    merged = max(current, seed)
                row[node] = merged
                self.act[i, node] = merged
                self.total[node] += merged - current

    # ------------------------------------------------------------------
    def apply_spread_candidates(
        self,
        tgt: np.ndarray,
        e_idx: np.ndarray,
        i_idx: np.ndarray,
        contribution: np.ndarray,
    ) -> None:
        """Apply prefiltered spread contributions in canonical order,
        cascading increases through explored parents (ACTIVATE)."""
        if len(e_idx) == 0:
            return
        rows = self.act_rows
        t_list = tgt[e_idx].tolist()
        i_list = i_idx.tolist()
        c_list = contribution.tolist()
        if self.combine == "sum":
            for node, i, value in zip(t_list, i_list, c_list):
                # Kernel already enforced the min_contribution floor.
                self._set(node, i, rows[i][node] + value)
                self._propagate_sum(node, i, value)
            return
        for node, i, value in zip(t_list, i_list, c_list):
            if value > rows[i][node]:
                self._set(node, i, value)
                self._propagate_up(node, i)

    def _set(self, node: int, i: int, value: float) -> None:
        self.cascade_touches += 1
        row = self.act_rows[i]
        current = row[node]
        row[node] = value
        self.total[node] += value - current
        self._changed.add(node)

    def _propagate_up(self, start: int, i: int) -> None:
        """Max-mode ACTIVATE: best-first cascade of an increase.

        The explored-edge mask is applied inline: a parent edge counts
        only when ``x`` was expanded through its in-edges or the parent
        through its out-edges.
        """
        row = self.act_rows[i]
        par = self._par
        xin = self._path.expanded_in
        xout = self._path.expanded_out
        total = self.total
        changed = self._changed
        touches = 0
        heap = [(-row[start], start)]
        while heap:
            neg, x = heapq.heappop(heap)
            ax = -neg
            if ax < row[x]:
                continue  # superseded by a later, larger increase
            parents = par[x]
            if not parents:
                continue
            norm = self._norm[x]
            if norm <= 0.0:
                continue
            unmasked = x in xin
            budget = self.mu * ax
            for parent, w in parents:
                if not unmasked and parent not in xout:
                    continue
                contribution = budget * (1.0 / w) / norm
                if contribution > row[parent]:
                    # _set, inlined for the per-event hot loop.
                    total[parent] += contribution - row[parent]
                    row[parent] = contribution
                    changed.add(parent)
                    touches += 1
                    heapq.heappush(heap, (-contribution, parent))
        self.cascade_touches += touches

    def _propagate_sum(self, start: int, i: int, delta: float) -> None:
        """Sum-mode ACTIVATE: push added mass upward until the
        ``min_contribution`` floor kills it."""
        row = self.act_rows[i]
        par = self._par
        xin = self._path.expanded_in
        xout = self._path.expanded_out
        total = self.total
        changed = self._changed
        floor = self.min_contribution
        touches = 0
        stack = [(start, delta)]
        while stack:
            x, d = stack.pop()
            parents = par[x]
            if not parents:
                continue
            norm = self._norm[x]
            if norm <= 0.0:
                continue
            unmasked = x in xin
            budget = self.mu * d
            for parent, w in parents:
                if not unmasked and parent not in xout:
                    continue
                contribution = budget * (1.0 / w) / norm
                if contribution > floor:
                    # _set, inlined for the per-event hot loop.
                    total[parent] += contribution
                    row[parent] += contribution
                    changed.add(parent)
                    touches += 1
                    stack.append((parent, contribution))
        self.cascade_touches += touches

    def drain_changed(self) -> np.ndarray:
        """Nodes whose activation changed since the last drain, sorted —
        and the snapshot-sync point for the ``act`` matrix."""
        if not self._changed:
            return np.zeros(0, dtype=np.int64)
        out = np.fromiter(self._changed, dtype=np.int64, count=len(self._changed))
        self._changed.clear()
        out.sort()
        nodes = out.tolist()
        for i in range(self.k):
            row = self.act_rows[i]
            self.act[i, out] = [row[x] for x in nodes]
        return out
