"""ABL3 bench: exact NRA-style output bound vs the loose heuristic."""

from repro.experiments.ablations import run_ablation_bounds

from conftest import as_float, run_report


def test_bounds_ablation(benchmark):
    report = run_report(benchmark, run_ablation_bounds)
    rows = {row[0]: row for row in report.rows}
    assert set(rows) == {"exact", "heuristic"}
    # The heuristic releases answers earlier (smaller out/gen lag).
    exact_lag = as_float(rows["exact"][1])
    heuristic_lag = as_float(rows["heuristic"][1])
    assert heuristic_lag <= exact_lag * 1.05
    # Both modes keep recall high (Section 5.7's finding).
    for mode in ("exact", "heuristic"):
        if rows[mode][2] != "-":
            assert as_float(rows[mode][2]) >= 0.9
