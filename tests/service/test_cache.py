"""ResultCache: LRU eviction order, TTL expiry, key canonicalization."""

import threading

import pytest

from repro.core.params import SearchParams
from repro.errors import EmptyQueryError
from repro.service.cache import ResultCache, canonical_cache_key


class FakeClock:
    """Manually advanced monotonic clock for deterministic TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# LRU semantics
# ----------------------------------------------------------------------
class TestLru:
    def test_get_and_put(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42
        assert "a" in cache and "missing" not in cache

    def test_eviction_is_least_recently_used_first(self):
        cache = ResultCache(capacity=3)
        for key in "abc":
            cache.put(key, key.upper())
        # Touch 'a' so 'b' becomes the LRU entry.
        assert cache.get("a") == "A"
        cache.put("d", "D")
        assert "b" not in cache
        assert all(key in cache for key in "acd")
        assert cache.stats()["evictions"] == 1

    def test_eviction_order_follows_access_sequence(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        assert cache.keys() == ["b", "c"]
        cache.get("b")  # c is now LRU
        cache.put("d", 4)  # evicts c
        assert cache.keys() == ["b", "d"]

    def test_put_refreshes_recency_and_value(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh: b becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_capacity_one(self):
        cache = ResultCache(capacity=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" not in cache and cache.get("b") == 2
        assert len(cache) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0.0)


# ----------------------------------------------------------------------
# TTL semantics
# ----------------------------------------------------------------------
class TestTtl:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.999)
        assert cache.get("a") == 1
        clock.advance(0.001)  # exactly ttl old -> expired
        assert cache.get("a") is None
        assert "a" not in cache
        assert cache.stats()["expirations"] == 1

    def test_refresh_resets_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        cache.put("a", 2)
        clock.advance(6.0)  # 12s after first put, 6s after refresh
        assert cache.get("a") == 2

    def test_get_does_not_reset_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        assert cache.get("a") == 1
        clock.advance(6.0)
        assert cache.get("a") is None

    def test_purge_expired_sweeps_eagerly(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl=5.0, clock=clock)
        for key in "abc":
            cache.put(key, key)
        clock.advance(10.0)
        cache.put("d", "d")
        assert cache.purge_expired() == 3
        assert cache.keys() == ["d"]

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1
        assert cache.purge_expired() == 0


# ----------------------------------------------------------------------
# stats and concurrency
# ----------------------------------------------------------------------
class TestStatsAndThreads:
    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_concurrent_mixed_access_stays_consistent(self):
        cache = ResultCache(capacity=64)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    key = (seed * 31 + i) % 100
                    cache.put(key, key)
                    got = cache.get(key)
                    assert got is None or got == key
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64


# ----------------------------------------------------------------------
# canonical keys
# ----------------------------------------------------------------------
class TestCanonicalKey:
    def test_whitespace_and_sequence_forms_collide(self):
        params = SearchParams()
        a = canonical_cache_key("dblp", "gray  transaction", "bidirectional", params)
        b = canonical_cache_key("dblp", " gray transaction ", "bidirectional", params)
        c = canonical_cache_key("dblp", ("gray", "transaction"), "bidirectional", params)
        assert a == b == c
        assert hash(a) == hash(c)

    def test_distinct_dimensions_do_not_collide(self):
        params = SearchParams()
        base = canonical_cache_key("dblp", "gray transaction", "bidirectional", params)
        assert base != canonical_cache_key("imdb", "gray transaction", "bidirectional", params)
        assert base != canonical_cache_key("dblp", "transaction gray", "bidirectional", params)
        assert base != canonical_cache_key("dblp", "gray transaction", "si-backward", params)
        assert base != canonical_cache_key(
            "dblp", "gray transaction", "bidirectional", params.with_(max_results=3)
        )

    def test_quoted_keywords_are_preserved(self):
        params = SearchParams()
        quoted = canonical_cache_key("d", '"jim gray" vldb', "bidirectional", params)
        split = canonical_cache_key("d", "jim gray vldb", "bidirectional", params)
        assert quoted != split

    def test_empty_query_raises(self):
        with pytest.raises(EmptyQueryError):
            canonical_cache_key("d", "   ", "bidirectional", SearchParams())
