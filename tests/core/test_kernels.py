"""Unit tests for the batched expansion kernels: backend resolution,
the CSR snapshot, the vector frontier's determinism rules, the emit
gate's accounting, batch-size resolution, and the batched loops'
cancellation responsiveness bound.
"""

import numpy as np
import pytest

from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.cancellation import CancellationToken
from repro.core.kernels import (
    ENV_VAR,
    GraphCSR,
    VectorFrontier,
    available_backends,
    graph_csr,
    numba_available,
    resolve_backend,
)
from repro.core.kernels.engines import EmitGate, effective_batch
from repro.core.params import SearchParams

from tests.helpers import build_graph


class TestBackendResolution:
    def test_explicit_backends_pass_through(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("vectorized") == "vectorized"

    def test_auto_defaults_to_python(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend("auto") == "python"

    def test_auto_reads_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert resolve_backend("auto") == "vectorized"

    def test_env_typo_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorised")
        with pytest.raises(ValueError, match="unknown expansion backend"):
            resolve_backend("auto")

    def test_numba_degrades_when_absent(self):
        resolved = resolve_backend("numba")
        if numba_available():
            assert resolved == "numba"
        else:
            assert resolved == "vectorized"

    def test_available_backends_always_include_core_three(self):
        arms = available_backends()
        for backend in ("python", "scalar", "vectorized"):
            assert backend in arms


class TestGraphCSR:
    def test_rows_match_graph_edge_order(self):
        g = build_graph(4, [(1, 0), (2, 0), (3, 1), (3, 2)])
        csr = graph_csr(g)
        assert isinstance(csr, GraphCSR)
        for v in range(4):
            lo, hi = int(csr.in_indptr[v]), int(csr.in_indptr[v + 1])
            assert [int(u) for u in csr.in_src[lo:hi]] == [
                u for u, _, _ in g.in_edges(v)
            ]
            lo, hi = int(csr.out_indptr[v]), int(csr.out_indptr[v + 1])
            assert [int(u) for u in csr.out_dst[lo:hi]] == [
                u for u, _, _ in g.out_edges(v)
            ]

    def test_cached_on_graph(self):
        g = build_graph(3, [(1, 0), (2, 1)])
        assert graph_csr(g) is graph_csr(g)

    def test_parent_rows_dedup_to_min_weight(self):
        from repro.graph.digraph import DataGraph

        dg = DataGraph()
        for i in range(2):
            dg.add_node(f"n{i}")
        dg.add_edge(1, 0, 3.0)
        dg.add_edge(1, 0, 1.5)  # parallel edge, lighter
        csr = graph_csr(dg.freeze())
        lo, hi = int(csr.par_indptr[0]), int(csr.par_indptr[1])
        assert hi - lo == 1
        assert float(csr.par_w[lo]) == 1.5


class TestVectorFrontier:
    def test_min_pop_order_breaks_ties_by_insertion(self):
        f = VectorFrontier(8, kind="min")
        f.push(5, 1.0)
        f.push(2, 1.0)
        f.push(7, 0.5)
        assert f.pop_batch(3).tolist() == [7, 5, 2]

    def test_update_does_not_bump_sequence(self):
        f = VectorFrontier(8, kind="min")
        f.push(3, 1.0)
        f.push(4, 1.0)
        f.update_many(np.array([3]), np.array([1.0]))
        # 3 still precedes 4: update_many keeps the original seq.
        assert f.pop_batch(2).tolist() == [3, 4]

    def test_pop_batch_clamps_to_size(self):
        f = VectorFrontier(4, kind="max")
        f.push_many(np.array([0, 1]), np.array([0.3, 0.9]))
        assert f.pop_batch(10).tolist() == [1, 0]
        assert not f

    def test_contains_mask_tracks_membership(self):
        f = VectorFrontier(4, kind="min")
        f.push(2, 0.0)
        assert f.contains_mask.tolist() == [False, False, True, False]
        f.pop_batch(1)
        assert not f.contains_mask.any()


class TestEffectiveBatch:
    def test_auto_capped_by_cancel_interval(self):
        params = SearchParams(cancel_check_interval=8)
        assert effective_batch(params) == 8

    def test_explicit_batch_capped_by_cancel_interval(self):
        params = SearchParams(expansion_batch=64, cancel_check_interval=16)
        assert effective_batch(params) == 16

    def test_explicit_batch_below_cap_kept(self):
        params = SearchParams(expansion_batch=4, cancel_check_interval=64)
        assert effective_batch(params) == 4


class _FakeOutput:
    def __init__(self):
        self.statuses = []

    def add(self, tree, *args, **kwargs):
        return self.statuses.pop(0)


class _FakeTree:
    def __init__(self, score):
        self.score = score


class TestEmitGate:
    def _gate(self, max_results=2, output_mode="exact"):
        class Search:
            pass

        search = Search()
        search.params = SearchParams(
            max_results=max_results, output_mode=output_mode
        )
        search.output = _FakeOutput()
        search.k = 2
        from repro.core.scoring import Scorer

        search.scorer = Scorer(build_graph(3, [(1, 0), (2, 1)]))
        return search, EmitGate(search)

    def test_never_blocks_below_capacity(self):
        search, gate = self._gate(max_results=2)
        search.output.statuses = ["new"]
        search.output.add(_FakeTree(0.9))
        assert not gate.blocks(1e9)  # only one answer tracked so far

    def test_blocks_hopeless_edge_scores_once_full(self):
        search, gate = self._gate(max_results=1)
        search.output.statuses = ["new"]
        search.output.add(_FakeTree(0.5))
        # score_upper_bound(E, k) -> 0 as E -> inf, so a huge edge
        # score can never beat the tracked 0.5.
        assert gate.blocks(1e12)
        assert not gate.blocks(0.0)

    def test_tracks_only_new_status(self):
        search, gate = self._gate(max_results=1)
        search.output.statuses = ["improved", "duplicate"]
        search.output.add(_FakeTree(0.5))
        search.output.add(_FakeTree(0.9))
        assert not gate.blocks(1e12)  # nothing tracked yet

    def test_disabled_in_heuristic_mode(self):
        search, gate = self._gate(max_results=1, output_mode="heuristic")
        search.output.statuses = ["new"]
        search.output.add(_FakeTree(0.5))
        assert not gate.blocks(1e12)


class TestCancellationResponsiveness:
    """The batched loops consume the token once per batch, and the
    batch is capped at ``cancel_check_interval`` — so a firing token
    stops the search within ~2 check intervals of pops even at the
    largest batch size."""

    def _chain(self, n=400):
        return build_graph(n, [(i + 1, i) for i in range(n - 1)])

    @pytest.mark.parametrize("cls", [SingleIteratorBackwardSearch, BidirectionalSearch])
    @pytest.mark.parametrize("backend", ["vectorized", "scalar"])
    def test_stops_within_two_check_intervals(self, cls, backend):
        interval = 32
        graph = self._chain()
        sets = [frozenset({0}), frozenset({399})]
        token = CancellationToken(cancel_at_tick=48, check_every=1)
        params = SearchParams(
            expansion_backend=backend,
            expansion_batch=512,  # asks for more than the cap allows
            cancel_check_interval=interval,
            max_results=1,
            dmax=500,
        )
        result = cls(graph, ("a", "b"), sets, params=params, token=token).run()
        assert result.cancel_reason == "cancelled"
        assert result.stats.nodes_explored <= 48 + interval

    def test_exact_tick_cut_matches_grant(self):
        graph = self._chain()
        sets = [frozenset({0}), frozenset({399})]
        token = CancellationToken(cancel_at_tick=10, check_every=1)
        params = SearchParams(
            expansion_backend="vectorized",
            expansion_batch=32,
            cancel_check_interval=32,
            max_results=1,
            dmax=500,
        )
        result = SingleIteratorBackwardSearch(
            graph, ("a", "b"), sets, params=params, token=token
        ).run()
        # tick_many matches tick()'s exact cut: the 10th tick observes
        # the firing and its pop is skipped, so 9 pops complete — the
        # batch is trimmed to the grant, not rounded up to batch size.
        assert result.stats.nodes_explored == 9
