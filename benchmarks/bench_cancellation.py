"""Cooperative cancellation: reclaimed capacity under deadline traffic.

The serving question this answers: when a slice of traffic carries
deadlines it cannot meet, how much total throughput does cooperative
cancellation buy back?  Pre-cancellation, a deadline miss returned an
error at the deadline but kept burning its worker thread until the
search finished — capacity the rest of the workload never got.

The workload: ``NUM_REQUESTS`` uncached queries, 20% of which are
deliberately expensive (``mi-backward`` over broad high-frequency
terms, the paper's worst case) carrying a deadline far below their
natural runtime.  The other 80% are cheap bidirectional queries with no
deadline.  The same stream runs through two thread-tier services:

* ``cooperative``   — ``QueryService(cooperative_cancellation=True)``:
  expired searches stop at their next token check and free the thread;
* ``abandoning``    — ``cooperative_cancellation=False``: the old
  behaviour, deadline misses run to completion in the background.

Because pure-Python search serializes on the GIL, batch wall time is
~total CPU time either way — so the QPS ratio directly measures the
CPU the doomed searches no longer burn.  One JSON row per mode (plus
``BENCH_JSON_OUT`` for CI artifacts).

Assertions:

* every deadline-flagged response is structured
  (``DeadlineExceededError``) and, having opted in, carries a
  ``complete=False`` partial result;
* a cancelled search stops within 2 cancellation-check intervals of
  pops (the responsiveness bound the token guarantees);
* cooperative QPS >= 1.2x abandoning QPS — asserted on machines with
  >= 2 cores, reported either way.

Env knobs: ``REPRO_SCALE`` scales the dataset; ``BENCH_JSON_OUT``
appends JSON rows to a file.

Run directly (``python benchmarks/bench_cancellation.py``) or under
pytest-benchmark.
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.cancellation import CancellationToken
from repro.core.params import SearchParams
from repro.errors import DeadlineExceededError
from repro.experiments.common import Report, build_bench, fmt
from repro.service import QueryRequest, QueryService

from conftest import as_float, cell, emit_json, run_report

NUM_REQUESTS = 30
EXPENSIVE_EVERY = 5  # 1 in 5 -> the 20% tight-deadline slice
TIGHT_DEADLINE = 0.05
CHECK_INTERVAL = 16
#: Caps the abandoning arm's worst case so the bench stays CI-sized;
#: both arms share it, so the comparison is fair.
EXPENSIVE_BUDGET = 30_000
MIN_SPEEDUP = 1.2


def _pick_queries(engine) -> tuple[str, list[str]]:
    """(expensive query, cheap mid-frequency queries).

    The expensive shape is the paper's MI-Backward worst case: one very
    frequent term (huge origin set, one iterator per origin) joined
    with two uncommon ones (the connection is far away, so iterators
    grind) — "database james john" on DBLP.  Top-frequency terms
    *together* would be cheap: they co-occur, answers fall out at the
    roots.
    """
    by_freq = engine.index.terms_by_frequency()
    broad = by_freq[0][0]
    rareish = [term for term, freq in by_freq if 5 <= freq <= 20]
    mids = [term for term, freq in by_freq if 5 <= freq <= 60]
    pairs = min(8, len(mids) // 2)
    assert len(rareish) >= 2 and pairs > 0, (
        f"dataset too small ({len(by_freq)} terms); raise REPRO_SCALE"
    )
    expensive = f"{broad} {rareish[-1]} {rareish[-2]}"
    cheap = [f"{mids[i]} {mids[i + pairs]}" for i in range(pairs)]
    return expensive, cheap


def _mixed_requests(expensive: str, cheap: list[str]) -> list[QueryRequest]:
    expensive_params = SearchParams(
        node_budget=EXPENSIVE_BUDGET, cancel_check_interval=CHECK_INTERVAL
    )
    requests = []
    for i in range(NUM_REQUESTS):
        if i % EXPENSIVE_EVERY == 0:
            requests.append(
                QueryRequest(
                    "dblp",
                    expensive,
                    algorithm="mi-backward",
                    k=40,
                    params=expensive_params,
                    timeout=TIGHT_DEADLINE,
                    allow_partial=True,
                    use_cache=False,
                )
            )
        else:
            requests.append(
                QueryRequest(
                    "dblp", cheap[i % len(cheap)], k=5, use_cache=False
                )
            )
    return requests


def _check_responsiveness(engine, expensive: str) -> int:
    """A pre-fired token must stop the search within 2 check intervals."""
    token = CancellationToken(check_every=CHECK_INTERVAL)
    token.cancel()
    result = engine.search(
        expensive,
        algorithm="mi-backward",
        params=SearchParams(cancel_check_interval=CHECK_INTERVAL),
        token=token,
    )
    assert result.complete is False
    assert result.stats.nodes_explored <= 2 * CHECK_INTERVAL, (
        f"cancelled search ran {result.stats.nodes_explored} pops, "
        f"over the 2x{CHECK_INTERVAL} responsiveness bound"
    )
    return result.stats.nodes_explored


def _run_mode(engine, requests, *, cooperative: bool) -> dict:
    with QueryService(
        max_workers=4, cooperative_cancellation=cooperative
    ) as service:
        service.register_engine("dblp", engine)
        start = time.perf_counter()
        responses = service.search_many(requests)
        seconds = time.perf_counter() - start
        metrics = service.metrics()
        service.close(wait=False)  # abandoning mode: don't join stragglers

    misses = [
        response
        for response in responses
        if response.error_type == DeadlineExceededError.__name__
    ]
    served = [response for response in responses if response.ok]
    assert misses, "no deadline ever fired; tighten TIGHT_DEADLINE"
    assert len(served) + len(misses) == len(responses)
    if cooperative:
        for response in misses:
            assert response.result is not None, "allow_partial lost its result"
            assert response.result.complete is False
    return {
        "mode": "cooperative" if cooperative else "abandoning",
        "workers": 4,
        "requests": len(responses),
        "deadline_misses": len(misses),
        "seconds": round(seconds, 4),
        "qps": round(len(responses) / seconds, 2),
        "reclaimed_seconds": round(
            metrics["cancellations"]["reclaimed_seconds"], 4
        ),
        "overrun_seconds": round(
            metrics["cancellations"]["overrun_seconds"], 4
        ),
    }


def run_cancellation() -> Report:
    bench = build_bench("dblp", 0.25)
    expensive, cheap = _pick_queries(bench.engine)
    stop_pops = _check_responsiveness(bench.engine, expensive)
    requests = _mixed_requests(expensive, cheap)

    report = Report(
        experiment="cancellation",
        title=(
            f"{NUM_REQUESTS} uncached queries, 20% expensive with "
            f"{TIGHT_DEADLINE}s deadlines (synthetic DBLP, "
            f"{os.cpu_count()} cores)"
        ),
        headers=["mode", "seconds", "QPS", "deadline misses", "speedup"],
    )

    rows = [
        _run_mode(bench.engine, requests, cooperative=False),
        _run_mode(bench.engine, requests, cooperative=True),
    ]
    for row in rows:
        emit_json(row)
    ratio = rows[1]["qps"] / rows[0]["qps"]
    for row in rows:
        report.rows.append(
            [
                row["mode"],
                fmt(row["seconds"], 3),
                fmt(row["qps"]),
                str(row["deadline_misses"]),
                fmt(row["qps"] / rows[0]["qps"], 2) + "x",
            ]
        )
    report.notes.append(
        f"pre-fired cancel stopped after {stop_pops} pops "
        f"(bound: 2x{CHECK_INTERVAL})"
    )
    report.notes.append(
        "abandoning mode returns the deadline error on time but burns the "
        "thread until the doomed search finishes; cooperative mode frees "
        "it within a couple of check intervals"
    )
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert ratio >= MIN_SPEEDUP, (
            f"cooperative cancellation should reclaim >= {MIN_SPEEDUP}x QPS "
            f"on this workload, got {ratio:.2f}x"
        )
        report.notes.append(f"cooperative/abandoning QPS ratio: {ratio:.2f}x")
    else:
        report.notes.append(
            f"only {cores} core: speedup {ratio:.2f}x reported but not "
            f"asserted (scheduler noise dominates single-core boxes)"
        )
    return report


def test_cancellation(benchmark):
    report = run_report(benchmark, run_cancellation)
    for row in range(len(report.rows)):
        assert as_float(cell(report, row, 2)) > 0


if __name__ == "__main__":
    print(run_cancellation().render())
