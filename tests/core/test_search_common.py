"""Behaviour shared by all three search algorithms, tested uniformly."""

import pytest

from repro.core.backward_mi import BackwardExpandingSearch
from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.exhaustive import exhaustive_answers
from repro.core.params import SearchParams

from tests.helpers import build_graph, validate_answer_tree

ALL_ALGORITHMS = [
    BidirectionalSearch,
    SingleIteratorBackwardSearch,
    BackwardExpandingSearch,
]

EXHAUST = SearchParams(max_results=100)


def run(cls, graph, keyword_sets, params=EXHAUST):
    keywords = tuple(f"k{i}" for i in range(len(keyword_sets)))
    return cls(graph, keywords, keyword_sets, params=params).run()


@pytest.mark.parametrize("cls", ALL_ALGORITHMS)
class TestSharedBehaviour:
    def test_simple_connection_found(self, cls):
        g = build_graph(3, [(0, 1), (0, 2)])
        sets = [frozenset({1}), frozenset({2})]
        result = run(cls, g, sets)
        assert result.answers
        best = result.best().tree
        assert best.nodes() == {0, 1, 2}
        validate_answer_tree(g, sets, best)

    def test_single_keyword_single_node_answers(self, cls):
        g = build_graph(3, [(0, 1), (1, 2)])
        sets = [frozenset({1})]
        result = run(cls, g, sets)
        assert result.answers
        assert result.best().tree.nodes() == {1}

    def test_keyword_overlap_same_node(self, cls):
        # Both keywords match node 1: the single node is the best answer.
        g = build_graph(3, [(0, 1), (1, 2)])
        sets = [frozenset({1}), frozenset({1})]
        result = run(cls, g, sets)
        assert result.answers
        assert result.best().tree.size() == 1

    def test_disconnected_keywords_yield_nothing(self, cls):
        g = build_graph(4, [(0, 1), (2, 3)])
        sets = [frozenset({0}), frozenset({3})]
        result = run(cls, g, sets)
        assert result.answers == []

    def test_all_answers_valid_and_deduplicated(self, cls):
        g = build_graph(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (2, 5)]
        )
        sets = [frozenset({1, 4}), frozenset({5})]
        result = run(cls, g, sets)
        assert result.answers
        signatures = result.signatures()
        assert len(signatures) == len(set(signatures))
        for answer in result.answers:
            validate_answer_tree(g, sets, answer.tree)

    def test_top_score_matches_oracle(self, cls):
        g = build_graph(
            7,
            [(0, 1), (0, 2), (3, 1), (3, 2), (4, 3), (5, 0), (6, 5), (6, 4)],
        )
        sets = [frozenset({1}), frozenset({2})]
        oracle = exhaustive_answers(g, sets)
        result = run(cls, g, sets)
        assert result.answers
        assert result.best().score == pytest.approx(oracle[0].score)

    def test_max_results_respected(self, cls):
        g = build_graph(5, [(0, 1), (2, 1), (3, 1), (4, 1), (0, 4)])
        sets = [frozenset({1})]
        result = run(cls, g, sets, params=SearchParams(max_results=2))
        assert len(result.answers) <= 2

    def test_node_budget_bounds_exploration(self, cls):
        g = build_graph(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (2, 5)]
        )
        sets = [frozenset({1, 4}), frozenset({5})]
        result = run(cls, g, sets, params=SearchParams(node_budget=3, max_results=100))
        assert result.stats.nodes_explored <= 3

    def test_stats_populated(self, cls):
        g = build_graph(3, [(0, 1), (0, 2)])
        sets = [frozenset({1}), frozenset({2})]
        result = run(cls, g, sets)
        stats = result.stats
        assert stats.nodes_explored > 0
        assert stats.nodes_touched > 0
        assert stats.edges_explored > 0
        assert stats.answers_output == len(result.answers)
        assert stats.finished_at is not None
        assert stats.elapsed >= 0.0

    def test_output_stamps_monotone(self, cls):
        g = build_graph(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (2, 5)]
        )
        sets = [frozenset({1, 4}), frozenset({5})]
        result = run(cls, g, sets)
        for answer in result.answers:
            assert answer.generated_pops <= answer.output_pops
            assert answer.generated_at <= answer.output_at + 1e-9

    def test_exact_mode_outputs_in_score_order_at_exhaustion(self, cls):
        g = build_graph(
            7,
            [(0, 1), (0, 2), (3, 1), (3, 2), (4, 3), (5, 0), (6, 5), (6, 4)],
        )
        sets = [frozenset({1}), frozenset({2})]
        result = run(cls, g, sets)
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)

    def test_mismatched_keywords_rejected(self, cls):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            cls(g, ("a",), [frozenset({0}), frozenset({1})])
        with pytest.raises(ValueError):
            cls(g, (), [])


@pytest.mark.parametrize("cls", ALL_ALGORITHMS)
class TestDepthCutoff:
    def test_dmax_limits_answer_reach(self, cls):
        # A long chain: with a tight dmax the far connection is missed.
        edges = [(i, i + 1) for i in range(9)]
        g = build_graph(10, edges)
        sets = [frozenset({0}), frozenset({9})]
        far = run(cls, g, sets, params=SearchParams(dmax=20, max_results=10))
        near = run(cls, g, sets, params=SearchParams(dmax=2, max_results=10))
        assert far.answers
        assert not near.answers

    def test_dmax_bounds_exploration(self, cls):
        edges = [(i, i + 1) for i in range(30)]
        g = build_graph(31, edges)
        sets = [frozenset({0})]
        result = run(cls, g, sets, params=SearchParams(dmax=3, max_results=100))
        # Nothing beyond dmax hops from the keyword should be explored.
        assert result.stats.nodes_explored <= 20
