"""Inverted keyword index: term -> set of graph nodes (substrate S6).

Mirrors the paper's "single index ... built on values from selected
string-valued attributes from multiple tables. The index maps from
keywords to (table-name, tuple-id) pairs" (Section 3); since tuples map
1:1 to graph nodes we store node ids directly.

Relation-name semantics (Section 2.2): "if a term matches a relation
name, all tuples in the relation are assumed to match the term".
Relation names are tokenized too, so the keyword ``paper`` matches every
row of a ``paper`` table even if no title contains the word.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.index.tokenizer import normalize_term, tokenize

__all__ = ["InvertedIndex", "build_index"]


class InvertedIndex:
    """Maps normalized terms to the set of matching graph nodes.

    Lookups are memoized per term: :meth:`lookup` materializes a
    frozenset from the mutable posting sets, and repeated queries for
    the same term (the hot path — the engine resolves every keyword of
    every query) must not pay that copy again.  The memo is kept
    *coherent* with construction: ``add_text`` / ``add_term`` /
    ``add_relation_node`` after a lookup invalidate exactly the terms
    they touch, so interleaving reads and writes can never serve a
    stale frozenset.  Only known terms are memoized — unknown query
    terms must not grow the cache unboundedly.
    """

    def __init__(self) -> None:
        self._postings: dict[str, set[int]] = {}
        self._relation_nodes: dict[str, set[int]] = {}
        self._lookup_cache: dict[str, frozenset[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_text(self, node: int, text: str) -> None:
        """Index every token of ``text`` for ``node``."""
        for term in tokenize(text):
            self._postings.setdefault(term, set()).add(node)
            self._lookup_cache.pop(term, None)

    def add_term(self, node: int, term: str) -> None:
        """Index a single already-normalized term for ``node``."""
        key = normalize_term(term)
        self._postings.setdefault(key, set()).add(node)
        self._lookup_cache.pop(key, None)

    def add_relation_node(self, relation: str, node: int) -> None:
        """Register ``node`` as a tuple of ``relation`` so that keywords
        matching the relation name match the node."""
        for term in tokenize(relation):
            self._relation_nodes.setdefault(term, set()).add(node)
            self._lookup_cache.pop(term, None)

    @classmethod
    def _from_postings(
        cls,
        postings: dict[str, Iterable[int]],
        relation_nodes: dict[str, Iterable[int]],
    ) -> "InvertedIndex":
        """Rebuild an index from already-normalized posting maps.

        Used by :mod:`repro.service.snapshot`; terms are stored verbatim
        (no re-tokenization), so a round-tripped index answers lookups
        identically to the one it was saved from.
        """
        index = cls()
        index._postings = {term: set(nodes) for term, nodes in postings.items()}
        index._relation_nodes = {
            term: set(nodes) for term, nodes in relation_nodes.items()
        }
        return index

    def _export_postings(
        self,
    ) -> tuple[dict[str, set[int]], dict[str, set[int]]]:
        """The raw posting maps, for snapshot serialization."""
        return self._postings, self._relation_nodes

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, term: str) -> frozenset[int]:
        """All nodes matching ``term``: text matches plus relation-name
        matches.  Empty frozenset when the term is unknown.

        Memoized per term; any ``add_*`` touching the term invalidates
        its entry (see the class docstring), so a lookup after an add
        always reflects the add.
        """
        key = normalize_term(term)
        cached = self._lookup_cache.get(key)
        if cached is not None:
            return cached
        text_nodes = self._postings.get(key)
        rel_nodes = self._relation_nodes.get(key)
        if text_nodes is None and rel_nodes is None:
            return frozenset()
        if rel_nodes is None:
            result = frozenset(text_nodes)
        elif text_nodes is None:
            result = frozenset(rel_nodes)
        else:
            result = frozenset(text_nodes | rel_nodes)
        self._lookup_cache[key] = result
        return result

    def frequency(self, term: str) -> int:
        """Origin-set size of ``term`` (paper: "#Keyword nodes")."""
        return len(self.lookup(term))

    def has_term(self, term: str) -> bool:
        key = normalize_term(term)
        return key in self._postings or key in self._relation_nodes

    def terms(self) -> Iterator[str]:
        """All indexed text terms (relation-name-only terms excluded)."""
        return iter(self._postings.keys())

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def terms_by_frequency(self) -> list[tuple[str, int]]:
        """Text terms with posting sizes, most frequent first.

        Used by the workload generator to pick keywords from a target
        origin-size band (paper Section 5.6 categories).
        """
        return sorted(
            ((term, len(nodes)) for term, nodes in self._postings.items()),
            key=lambda item: (-item[1], item[0]),
        )

    def __len__(self) -> int:
        return self.vocabulary_size()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvertedIndex(terms={len(self._postings)}, "
            f"relations={len(self._relation_nodes)})"
        )


def build_index(
    db,
    graph,
    *,
    text_columns: Optional[dict[str, Iterable[str]]] = None,
) -> InvertedIndex:
    """Build the keyword index of ``db`` against graph node ids.

    Parameters
    ----------
    db:
        Source :class:`~repro.relational.Database`.
    graph:
        The :class:`~repro.graph.SearchGraph` built from ``db`` (node
        ids are resolved via its ``(table, pk)`` references).
    text_columns:
        Optional override mapping table name -> columns to index; by
        default each table's declared ``text_columns`` are used.
    """
    index = InvertedIndex()
    for table in db.schema.tables:
        columns = (
            tuple(text_columns.get(table.name, ()))
            if text_columns is not None
            else table.text_columns
        )
        for row in db.rows(table.name):
            node = graph.node_by_ref(table.name, row[table.pk])
            index.add_relation_node(table.name, node)
            for column in columns:
                value = row[column]
                if value:
                    index.add_text(node, str(value))
    return index
