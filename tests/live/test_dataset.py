"""MutableDataset lifecycle: epochs, MVCC isolation, compaction, snapshots."""

import threading

import pytest

from repro.live import MutableDataset
from repro.live.mutations import AddEdge, AddNode, UpdateText
from repro.service.snapshot import load_snapshot, snapshot_info

from tests.conftest import make_toy_db
from tests.live.conftest import assert_same_graph, assert_same_index, canonical_answers


class TestEpochs:
    def test_versions_are_monotone(self, toy_dataset):
        assert toy_dataset.version == 0
        v1 = toy_dataset.mutate([AddNode(label="a")]).epoch.version
        v2 = toy_dataset.mutate([AddNode(label="b")]).epoch.version
        assert (v1, v2) == (1, 2)

    def test_empty_batch_does_not_bump(self, toy_dataset):
        assert toy_dataset.mutate([]).epoch.version == 0
        assert toy_dataset.commit().version == 0

    def test_staged_changes_invisible_until_commit(self, toy_dataset):
        node = toy_dataset.add_node("staged", text="stagedterm")
        assert toy_dataset.index.lookup("stagedterm") == frozenset()
        assert toy_dataset.graph.num_nodes == node  # not yet visible
        epoch = toy_dataset.commit()
        assert epoch.index.lookup("stagedterm") == {node}
        assert epoch.graph.num_nodes == node + 1

    def test_old_epoch_is_immutable(self, toy_dataset):
        """MVCC: a search holding the old epoch sees no commits."""
        old = toy_dataset.epoch
        baseline = canonical_answers(old.engine.search("transaction"))
        old_nodes = old.graph.num_nodes
        toy_dataset.mutate(
            [
                AddNode(label="Tx Paper", table="paper", text="transaction blast"),
                AddEdge(u=-1, v=3),
            ]
        )
        assert old.graph.num_nodes == old_nodes
        assert old.index.lookup("blast") == frozenset()
        assert canonical_answers(old.engine.search("transaction")) == baseline
        # while the new epoch sees the change
        assert toy_dataset.index.lookup("blast") != frozenset()

    def test_concurrent_searches_on_prior_epoch_unperturbed(self, toy_dataset):
        """Readers hammer one epoch while the writer commits 20 more."""
        old = toy_dataset.epoch
        baseline = canonical_answers(old.engine.search("transaction gray"))
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                answers = canonical_answers(old.engine.search("transaction gray"))
                if answers != baseline:
                    failures.append(answers)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for i in range(20):
                toy_dataset.mutate(
                    [
                        AddNode(
                            label=f"P{i}",
                            table="paper",
                            text=f"transaction gray volume{i}",
                        ),
                        AddEdge(u=-1, v=3),
                    ]
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures
        assert toy_dataset.version == 20


class TestCompaction:
    def test_compact_preserves_answers_and_version(self, toy_dataset):
        toy_dataset.mutate(
            [
                AddNode(label="Q Paper", table="paper", text="quorum consensus"),
                AddEdge(u=-1, v=3),
                UpdateText(node=7, text="redesigned storage"),
            ]
        )
        before_graph = toy_dataset.graph
        before_index = toy_dataset.index
        before = canonical_answers(toy_dataset.engine.search("quorum"))
        epoch = toy_dataset.compact()
        assert epoch.compacted
        assert epoch.version == 1  # identical answers: version must not bump
        assert_same_graph(epoch.graph, before_graph)
        assert_same_index(
            epoch.index, before_index, extra_terms=["quorum", "redesigned"]
        )
        assert canonical_answers(epoch.engine.search("quorum")) == before
        # idempotent
        assert toy_dataset.compact() is toy_dataset.epoch

    def test_auto_compaction_by_ratio(self, toy_engine):
        dataset = MutableDataset.from_engine(toy_engine, compact_ratio=0.01)
        outcome = dataset.mutate(
            [AddNode(label="x"), AddEdge(u=-1, v=3), AddEdge(u=-1, v=4)]
        )
        assert outcome.epoch.compacted
        assert dataset.stats()["mutations_since_compaction"] == 0

    def test_node_and_text_mutations_trigger_compaction_too(self, toy_engine):
        """Regression: a node-/text-only ingest stream must still hit
        the compaction policy — only counting edge ops let the overlay
        grow without bound."""
        dataset = MutableDataset.from_engine(
            toy_engine, compact_ratio=None, compact_every=1
        )
        assert dataset.mutate([AddNode(label="n", text="justtext")]).epoch.compacted
        assert dataset.mutate([UpdateText(node=7, text="renamed")]).epoch.compacted
        assert dataset.stats()["added_nodes"] == 0  # folded into the base

    def test_rolled_back_batch_does_not_count_toward_compaction(self, toy_engine):
        from repro.errors import MutationError

        dataset = MutableDataset.from_engine(toy_engine, compact_ratio=None)
        with pytest.raises(MutationError):
            dataset.mutate([AddNode(label="x"), AddEdge(u=-1, v=99_999)])
        assert dataset.stats()["mutations_since_compaction"] == 0

    def test_auto_compaction_every_commits(self, toy_engine):
        dataset = MutableDataset.from_engine(
            toy_engine, compact_ratio=None, compact_every=2
        )
        first = dataset.mutate([AddNode(label="x"), AddEdge(u=-1, v=3)])
        assert not first.epoch.compacted
        second = dataset.mutate([AddEdge(u=-1 + dataset.graph.num_nodes, v=4)])
        assert second.epoch.compacted

    def test_compaction_writes_versioned_snapshot(self, toy_engine, tmp_path):
        path = tmp_path / "live.snap"
        dataset = MutableDataset.from_engine(
            toy_engine, compact_ratio=0.01, snapshot_path=path
        )
        dataset.mutate(
            [AddNode(label="snap", text="snapshotterm"), AddEdge(u=-1, v=3)]
        )
        info = snapshot_info(path)
        assert info["dataset_version"] == dataset.version
        assert info["content_digest"]
        graph, index = load_snapshot(path)
        assert_same_graph(graph, dataset.graph)
        assert index.lookup("snapshotterm") == dataset.index.lookup("snapshotterm")


class TestConstruction:
    def test_from_snapshot_round_trip(self, toy_engine, tmp_path):
        from repro.service.snapshot import save_engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        dataset = MutableDataset.from_snapshot(path)
        outcome = dataset.mutate([AddNode(label="x", text="fromsnapshot")])
        assert dataset.index.lookup("fromsnapshot") == {outcome.new_nodes[0]}

    def test_rejects_overlay_base(self, toy_dataset):
        from repro.errors import MutationError

        toy_dataset.mutate([AddNode(label="x")])
        with pytest.raises(MutationError, match="flat SearchGraph"):
            MutableDataset(toy_dataset.graph, toy_dataset.index)

    def test_bad_knobs(self, toy_engine):
        with pytest.raises(ValueError):
            MutableDataset.from_engine(toy_engine, compact_ratio=0)
        with pytest.raises(ValueError):
            MutableDataset.from_engine(toy_engine, compact_every=0)
        with pytest.raises(ValueError):
            MutableDataset.from_engine(toy_engine, new_node_prestige=-1.0)

    def test_new_node_prestige_default_is_base_mean(self, toy_engine):
        dataset = MutableDataset.from_engine(toy_engine)
        node = dataset.mutate([AddNode(label="x")]).new_nodes[0]
        expected = float(toy_engine.graph.prestige.mean())
        assert dataset.graph.node_prestige(node) == expected

    def test_recompute_prestige_on_commit(self, toy_engine):
        dataset = MutableDataset.from_engine(toy_engine, compact_ratio=None)
        dataset.add_node("hub", text="hub")
        hub = dataset.graph.num_nodes  # id after commit
        for paper in (5, 6, 7, 8):
            dataset.add_edge(paper, hub)
        epoch = dataset.commit(recompute_prestige=True)
        # A node every paper points at should out-rank the default.
        assert epoch.graph.node_prestige(hub) > 0
        total = float(epoch.graph.prestige.sum())
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_stats_shape(self, toy_dataset):
        toy_dataset.mutate([AddNode(label="x"), AddEdge(u=-1, v=3)])
        stats = toy_dataset.stats()
        assert stats["added_nodes"] == 1
        assert stats["version"] == 1
        assert stats["staged"] == 0
        assert stats["mutations_applied"] == 2


def test_update_text_via_fresh_database():
    """update_text on a node whose terms come only from the base index."""
    engine_db = make_toy_db()
    dataset = MutableDataset.from_database(engine_db)
    node = dataset.graph.node_by_ref("paper", 3)  # "The Design of Postgres"
    dataset.mutate([UpdateText(node=node, text="vector databases now")])
    assert node not in dataset.index.lookup("postgres")
    assert node in dataset.index.lookup("vector")
    # relation-name postings survive a text update
    assert node in dataset.index.lookup("paper")
