"""Shared test utilities: graph builders and answer-tree validation."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.answer import AnswerTree, is_minimal_rooting
from repro.core.scoring import Scorer
from repro.graph.digraph import DataGraph
from repro.graph.searchgraph import SearchGraph

__all__ = [
    "build_graph",
    "random_data_graph",
    "random_keyword_sets",
    "validate_answer_tree",
    "edge_weight_of",
]


def build_graph(
    n_nodes: int,
    edges: Sequence[tuple[int, int]] | Sequence[tuple[int, int, float]],
    *,
    prestige=None,
) -> SearchGraph:
    """A frozen search graph from an explicit edge list."""
    graph = DataGraph()
    for i in range(n_nodes):
        graph.add_node(f"n{i}")
    for edge in edges:
        if len(edge) == 2:
            u, v = edge
            graph.add_edge(u, v)
        else:
            u, v, w = edge
            graph.add_edge(u, v, w)
    return graph.freeze(prestige=prestige)


def random_data_graph(
    rng: random.Random,
    *,
    n_nodes: int,
    n_edges: int,
    max_weight: float = 3.0,
) -> SearchGraph:
    """A random simple digraph (no parallel edges, no self loops).

    Guaranteed weakly connected-ish by first laying a random spanning
    chain, then sprinkling extra edges.
    """
    graph = DataGraph()
    for i in range(n_nodes):
        graph.add_node(f"n{i}")
    used: set[tuple[int, int]] = set()
    order = list(range(n_nodes))
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        u, v = (a, b) if rng.random() < 0.5 else (b, a)
        used.add((u, v))
        graph.add_edge(u, v, 1.0 + rng.random() * (max_weight - 1.0))
    attempts = 0
    while len(used) < n_edges and attempts < n_edges * 20:
        attempts += 1
        u = rng.randrange(n_nodes)
        v = rng.randrange(n_nodes)
        if u == v or (u, v) in used:
            continue
        used.add((u, v))
        graph.add_edge(u, v, 1.0 + rng.random() * (max_weight - 1.0))
    return graph.freeze()


def random_keyword_sets(
    rng: random.Random, graph: SearchGraph, *, k: int, max_size: int = 3
) -> list[frozenset[int]]:
    """k non-empty random keyword node sets."""
    sets = []
    for _ in range(k):
        size = rng.randint(1, max_size)
        sets.append(frozenset(rng.sample(range(graph.num_nodes), size)))
    return sets


def edge_weight_of(graph: SearchGraph, u: int, v: int) -> Optional[float]:
    """Minimum weight among edges u -> v in the search graph, or None."""
    weights = [w for target, w, _ in graph.out_edges(u) if target == v]
    return min(weights) if weights else None


def validate_answer_tree(
    graph: SearchGraph,
    keyword_sets: Sequence[frozenset[int]],
    tree: AnswerTree,
    *,
    lam: float = 0.2,
) -> None:
    """Assert every structural and scoring invariant of an answer tree."""
    assert len(tree.paths) == len(keyword_sets)
    for i, path in enumerate(tree.paths):
        assert path[0] == tree.root, "path must start at the root"
        assert path[-1] in keyword_sets[i], "path must end on a keyword node"
        # Parallel edges (a forward edge and a derived backward edge may
        # join the same pair) make the exact step weights ambiguous from
        # the path alone; the recorded dist must lie between the
        # cheapest and the costliest edge choice per step.
        min_total = 0.0
        max_total = 0.0
        for u, v in zip(path, path[1:]):
            weights = [w for target, w, _ in graph.out_edges(u) if target == v]
            assert weights, f"({u},{v}) is not a graph edge"
            min_total += min(weights)
            max_total += max(weights)
        assert min_total - 1e-6 <= tree.dists[i] <= max_total + 1e-6, (
            "recorded dist is not a realizable path weight"
        )
    assert is_minimal_rooting(tree.root, tree.paths)

    scorer = Scorer(graph, lam)
    rebuilt = scorer.build_tree(tree.root, tree.paths, tree.dists)
    assert abs(rebuilt.edge_score - tree.edge_score) < 1e-9
    assert abs(rebuilt.node_score - tree.node_score) < 1e-9
    assert abs(rebuilt.score - tree.score) < 1e-9
