"""QueryService live-mutation integration: apply, versions, cache keying."""

import pytest

from repro.errors import MutationError, UnknownDatasetError
from repro.live import MutableDataset
from repro.live.mutations import AddEdge, AddNode, UpdateText
from repro.service import QueryService


@pytest.fixture
def service(toy_engine):
    with QueryService(max_workers=2) as svc:
        svc.register_engine("toy", toy_engine)
        yield svc


def answer_nodes(response) -> set:
    return {
        node
        for answer in response.result.answers
        for path in answer.tree.paths
        for node in path
    }


class TestApply:
    def test_apply_upgrades_and_commits(self, service):
        result = service.apply(
            "toy",
            [
                AddNode(label="Live Paper", table="paper", text="liveterm topic"),
                AddEdge(u=-1, v=3),
            ],
        )
        assert result.version == 1
        assert result.applied == 2
        assert len(result.new_nodes) == 1
        response = service.search("toy", "liveterm")
        assert response.ok
        assert result.new_nodes[0] in answer_nodes(response)

    def test_apply_accepts_wire_dicts(self, service):
        result = service.apply(
            "toy", [{"op": "add_node", "label": "W", "text": "wireterm"}]
        )
        assert result.version == 1
        assert service.search("toy", "wireterm").ok

    def test_apply_unknown_dataset(self, service):
        with pytest.raises(UnknownDatasetError):
            service.apply("nope", [AddNode(label="x")])

    def test_apply_bad_batch_changes_nothing(self, service):
        with pytest.raises(MutationError):
            service.apply(
                "toy", [AddNode(label="x", text="halfdone"), AddEdge(u=-1, v=9999)]
            )
        assert service.dataset_version("toy") == 0
        response = service.search("toy", "halfdone")
        assert response.error_type == "KeywordNotFoundError"

    def test_apply_on_lazy_snapshot_dataset(self, toy_engine, tmp_path):
        from repro.service.snapshot import save_engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        with QueryService() as svc:
            svc.register_snapshot("snapped", path)
            result = svc.apply(
                "snapped", [{"op": "add_node", "label": "S", "text": "snapterm"}]
            )
            assert result.version == 1
            assert svc.search("snapped", "snapterm").ok

    def test_register_mutable_directly(self, toy_engine):
        dataset = MutableDataset.from_engine(toy_engine)
        with QueryService() as svc:
            svc.register_mutable("toy", dataset)
            assert svc.datasets() == ["toy"]
            assert svc.engine("toy") is dataset.engine
            svc.apply("toy", [AddNode(label="x", text="directterm")])
            assert svc.search("toy", "directterm").ok


class TestVersionKeyedCache:
    def test_stale_results_never_served_after_commit(self, service):
        """The acceptance-criteria cache test: query, cache, mutate —
        the next query must reflect the mutation, not the cache."""
        first = service.search("toy", "transaction")
        assert first.ok and not first.cached
        assert service.search("toy", "transaction").cached

        result = service.apply(
            "toy",
            [
                AddNode(
                    label="Nested Transaction Model",
                    table="paper",
                    text="Nested Transaction Model",
                ),
                AddEdge(u=-1, v=3),
            ],
        )
        after = service.search("toy", "transaction")
        assert not after.cached
        assert result.new_nodes[0] in answer_nodes(after)
        # and the fresh result is cached under the new version
        assert service.search("toy", "transaction").cached

    def test_cache_purge_counts_old_version_entries(self, service):
        service.search("toy", "transaction")
        service.search("toy", "gray")
        result = service.apply("toy", [AddNode(label="x")])
        assert result.cache_purged == 2
        assert len(service.cache) == 0

    def test_versions_in_metrics_and_datasets(self, service):
        assert service.dataset_versions() == {"toy": 0}
        service.apply("toy", [AddNode(label="x")])
        assert service.dataset_versions() == {"toy": 1}
        exported = service.metrics()
        assert exported["datasets"]["versions"] == {"toy": 1}

    def test_reregistration_advances_version(self, service, toy_engine):
        service.apply("toy", [AddNode(label="x")])
        assert service.dataset_version("toy") == 1
        service.register_engine("toy", toy_engine)
        assert service.dataset_version("toy") == 2
        # mutating the re-registered dataset keeps strictly increasing
        assert service.apply("toy", [AddNode(label="y")]).version == 3

    def test_inflight_epoch_completes_unperturbed(self, service):
        """A search holding the old epoch's engine finishes against it
        even after a commit lands mid-flight."""
        old_engine = service.engine("toy")
        before = old_engine.search("transaction")
        service.apply(
            "toy",
            [AddNode(label="T", table="paper", text="transaction extra")],
        )
        again = old_engine.search("transaction")
        assert [a.tree for a in again.answers] == [a.tree for a in before.answers]
        assert service.engine("toy") is not old_engine


class TestReloadSnapshot:
    def test_reload_noop_on_same_digest(self, toy_engine, tmp_path):
        from repro.service.snapshot import save_engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        with QueryService() as svc:
            svc.register_snapshot("toy", path)
            svc.warmup()
            outcome = svc.reload_snapshot("toy", path)
            assert outcome["reloaded"] is False

    def test_failed_batch_keeps_reload_noop_possible(self, toy_engine, tmp_path):
        """Regression: a rolled-back batch upgrades the dataset to
        mutable but changes nothing — the digest no-op must survive,
        or every failed mutation would force fleet-wide rebuilds."""
        from repro.service.snapshot import save_engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        with QueryService() as svc:
            svc.register_snapshot("toy", path)
            svc.warmup()
            with pytest.raises(MutationError):
                svc.apply("toy", [{"op": "remove_edge", "u": 0, "v": 1}])
            assert svc.reload_snapshot("toy", path)["reloaded"] is False
            # but a *successful* commit kills the no-op, as it must
            svc.apply("toy", [AddNode(label="x")])
            assert svc.reload_snapshot("toy", path)["reloaded"] is True

    def test_reload_after_rewrite(self, toy_engine, tmp_path):
        from repro.service.snapshot import save_engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        with QueryService() as svc:
            svc.register_snapshot("toy", path)
            svc.warmup()
            version_before = svc.dataset_version("toy")

            # Rewrite the snapshot with different content.
            dataset = MutableDataset.from_engine(toy_engine)
            dataset.mutate([AddNode(label="R", text="reloadedterm")])
            epoch = dataset.compact()
            from repro.service.snapshot import save_snapshot

            save_snapshot(path, epoch.graph, epoch.index, version=epoch.version)

            outcome = svc.reload_snapshot("toy", path)
            assert outcome["reloaded"] is True
            assert svc.dataset_version("toy") > version_before
            assert svc.search("toy", "reloadedterm").ok
            # now a no-op again
            assert svc.reload_snapshot("toy", path)["reloaded"] is False

    def test_reload_converges_replicas_with_different_histories(
        self, toy_engine, tmp_path
    ):
        """Two services at different versions reloading the same file
        must land on the same version — identical content must not
        read as drift (the fleet's health check keys off this)."""
        from repro.service.snapshot import save_engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        behind = QueryService()
        ahead = QueryService()
        try:
            for svc in (behind, ahead):
                svc.register_snapshot("toy", path)
                svc.warmup()
            ahead.apply("toy", [AddNode(label="x")])  # histories diverge

            fresh = ahead.save_snapshot("toy", tmp_path / "fresh.snap")
            a = behind.reload_snapshot("toy", fresh)
            b = ahead.reload_snapshot("toy", fresh)
            assert a["reloaded"] and b["reloaded"]
            assert a["version"] == b["version"]
            assert behind.dataset_version("toy") == ahead.dataset_version("toy")
            # and strictly above both priors, so no stale cache key lives
            assert a["version"] > 1
        finally:
            behind.close()
            ahead.close()

    def test_reload_after_nonsnapshot_reregistration_is_not_a_noop(
        self, toy_engine, tmp_path
    ):
        """Regression: replacing a snapshot-registered dataset with a
        plain engine must forget the recorded digest — a later reload
        against the old file has to actually load it, not no-op and
        keep serving the replacement."""
        from repro.live import MutableDataset
        from repro.live.mutations import AddNode
        from repro.service.snapshot import save_engine

        other = MutableDataset.from_engine(toy_engine)
        other.mutate([AddNode(label="other", text="otherterm")])
        other_engine = other.compact().engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        with QueryService() as svc:
            svc.register_snapshot("toy", path)
            svc.warmup()  # factory records the file's digest
            svc.register_engine("toy", other_engine)
            assert svc.search("toy", "otherterm").ok
            outcome = svc.reload_snapshot("toy", path)
            assert outcome["reloaded"] is True
            response = svc.search("toy", "otherterm")
            assert response.error_type == "KeywordNotFoundError"

    def test_stale_lazy_build_does_not_shadow_reload(self, toy_engine, tmp_path):
        """Regression: a lazy snapshot build finishing *after* a
        concurrent re-registration must be discarded, not stored over
        the replacement."""
        import threading

        from repro.service.snapshot import load_engine, save_engine

        path = save_engine(tmp_path / "old.snap", toy_engine)

        dataset = MutableDataset.from_engine(toy_engine)
        dataset.mutate([AddNode(label="new", text="replacementterm")])
        fresh_engine = dataset.compact().engine
        fresh = save_engine(tmp_path / "fresh.snap", fresh_engine)

        with QueryService() as svc:
            svc.register_snapshot("toy", path)
            build_started = threading.Event()
            release_build = threading.Event()

            original_load = load_engine

            def slow_factory():
                build_started.set()
                release_build.wait(timeout=10)
                return original_load(path)

            with svc._registry_lock:  # swap in an observable slow build
                svc._factories["toy"] = slow_factory

            worker = threading.Thread(target=lambda: svc.search("toy", "gray"))
            worker.start()
            assert build_started.wait(timeout=10)
            outcome = svc.reload_snapshot("toy", fresh)  # lands mid-build
            assert outcome["reloaded"] is True
            release_build.set()
            worker.join(timeout=30)
            # The stale build must not have shadowed the reload.
            response = svc.search("toy", "replacementterm")
            assert response.ok, response.error

    def test_reload_force(self, toy_engine, tmp_path):
        from repro.service.snapshot import save_engine

        path = save_engine(tmp_path / "toy.snap", toy_engine)
        with QueryService() as svc:
            svc.register_snapshot("toy", path)
            svc.warmup()
            assert svc.reload_snapshot("toy", path, force=True)["reloaded"] is True

    def test_save_snapshot_of_mutated_dataset(self, service, tmp_path):
        service.apply(
            "toy", [AddNode(label="S", table="paper", text="resnappedterm")]
        )
        path = service.save_snapshot("toy", tmp_path / "mutated.snap")
        from repro.service.snapshot import load_snapshot, snapshot_info

        assert snapshot_info(path)["dataset_version"] == 1
        _, index = load_snapshot(path)
        assert index.lookup("resnappedterm") != frozenset()
