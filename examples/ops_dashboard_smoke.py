"""Ops-dashboard smoke: boot the HTTP tier, scrape every debug endpoint.

The CI ``dashboard-smoke`` job runs this end to end:

1. build a small engine, snapshot it, spin up a two-worker
   :class:`repro.ShardedQueryService` with a WAL and the sampling
   profiler on,
2. push a little traffic (including one guaranteed failure and one
   live mutation) so every dashboard section has something to show,
3. serve the fleet over HTTP and fetch ``/debug/events``,
   ``/debug/profile`` and ``/debug/dashboard`` like a browser would,
4. assert the responses carry what an operator needs (events with
   monotone sequence numbers, collapsed profile stacks, the SLO and
   event sections in the HTML),
5. write the dashboard page to ``DASHBOARD_HTML_OUT`` (when set) so CI
   uploads a real page as an artifact.

Run:  python examples/ops_dashboard_smoke.py
"""

import json
import os
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import KeywordSearchEngine, ShardedQueryService
from repro.cluster.http import make_server
from repro.datasets import DblpConfig, make_dblp
from repro.live.mutations import AddNode
from repro.service.snapshot import save_engine


def _get(base: str, path: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(f"{base}{path}") as response:
        return response.status, response.read()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        engine = KeywordSearchEngine.from_database(
            make_dblp(DblpConfig().scaled(0.25))
        )
        snapshot = save_engine(Path(tmp) / "dblp.snap", engine)
        with ShardedQueryService(
            {"dblp": snapshot},
            num_workers=2,
            default_replicas=2,
            wal_dir=Path(tmp) / "wal",
            slo_interval=0.5,
        ) as cluster:
            cluster.warmup()

            # Traffic for the dashboard to show: some hits, one failure
            # (unknown dataset -> fleet failure counter), one mutation
            # (WAL append + mutation_commit events on both sides).
            for _ in range(5):
                cluster.search("dblp", "paper stream", k=3).raise_for_error()
            assert cluster.search("nope", "paper").error_type is not None
            cluster.apply(
                "dblp", [AddNode(label="ops probe", text="dashboard")]
            )
            time.sleep(0.6)  # let the SLO ticker evaluate at least once

            server = make_server(cluster)
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            threading.Thread(target=server.serve_forever, daemon=True).start()

            status, body = _get(base, "/debug/events?since=0")
            assert status == 200, status
            events = json.loads(body)
            seqs = [event["seq"] for event in events["events"]]
            assert seqs and seqs == sorted(seqs), seqs
            kinds = {event["kind"] for event in events["events"]}
            assert "mutation_commit" in kinds, kinds
            print(
                f"/debug/events: {len(seqs)} events, kinds "
                f"{sorted(kinds)}, last_seq={events['last_seq']}"
            )

            # Incremental tail: nothing new after the last seq.
            status, body = _get(
                base, f"/debug/events?since={events['last_seq']}"
            )
            assert json.loads(body)["events"] == []

            status, body = _get(base, "/debug/profile?seconds=1")
            assert status == 200, status
            profile = body.decode("utf-8")
            lines = [line for line in profile.splitlines() if line.strip()]
            assert lines, "profiler returned no stacks"
            assert all(
                line.rsplit(" ", 1)[1].isdigit() for line in lines
            ), "not collapsed-stack format"
            print(f"/debug/profile: {len(lines)} collapsed stacks")

            status, body = _get(base, "/debug/dashboard")
            assert status == 200, status
            html = body.decode("utf-8")
            for needle in ("SLO", "Events", "dblp", "<html"):
                assert needle in html, f"dashboard missing {needle!r}"
            print(f"/debug/dashboard: {len(html)} bytes of HTML")

            out = os.environ.get("DASHBOARD_HTML_OUT")
            if out:
                Path(out).write_text(html, encoding="utf-8")
                print(f"dashboard page written to {out}")

            server.shutdown()
            server.server_close()
    print("ops dashboard smoke OK")


if __name__ == "__main__":
    main()
