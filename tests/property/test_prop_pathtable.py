"""Property test: PathTable converges to exact shortest paths.

After exploring every edge (in any order), the ATTACH propagation must
leave ``dist[u][i]`` equal to the true shortest-path distance from
``u`` to keyword set ``S_i`` — the invariant both SI-Backward and
Bidirectional rely on at exhaustion.
"""

from math import inf

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import keyword_distances
from repro.core.pathtable import PathTable
from repro.graph.digraph import DataGraph


@st.composite
def table_cases(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    raw_edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=2 * n,
        )
    )
    edges = {}
    for u, v, w in raw_edges:
        if u != v and (u, v) not in edges:
            edges[(u, v)] = w
    keyword_sets = [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=2,
                )
            )
        )
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    ]
    # Exploration order is part of the property: any permutation works.
    order_seed = draw(st.randoms(use_true_random=False))
    return n, edges, keyword_sets, order_seed


@given(case=table_cases())
@settings(max_examples=60, deadline=None)
def test_full_relaxation_matches_dijkstra(case):
    n, edges, keyword_sets, order_rng = case
    dg = DataGraph()
    for i in range(n):
        dg.add_node(str(i))
    for (u, v), w in edges.items():
        dg.add_edge(u, v, w)
    graph = dg.freeze()

    table = PathTable(graph, keyword_sets)
    table.seed_all()

    # Explore every search-graph edge in a random order.
    all_edges = [
        (u, v, w) for v in graph.nodes() for u, w, _ in graph.in_edges(v)
    ]
    order_rng.shuffle(all_edges)
    for u, v, w in all_edges:
        table.explore_edge(u, v, w)

    for i, targets in enumerate(keyword_sets):
        expected, _ = keyword_distances(graph, targets)
        for node in graph.nodes():
            assert table.dist(node, i) == (
                expected.get(node, inf)
            ) or abs(table.dist(node, i) - expected.get(node, inf)) < 1e-9

    # And the extracted paths realize exactly those distances.
    for node in graph.nodes():
        if table.is_complete(node):
            _, dists = table.build_paths(node)
            for i in range(len(keyword_sets)):
                assert abs(dists[i] - table.dist(node, i)) < 1e-9
