"""Small join primitives over the in-memory store.

These are the building blocks of the Sparse executor's indexed
nested-loop joins and of the workload generator's ground-truth "SQL"
evaluation (paper Section 5.4: "we executed SQL queries to find relevant
answers").
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.relational.database import Database
from repro.relational.schema import ForeignKey

__all__ = ["follow_fk", "follow_fk_reverse", "join_step"]

Row = dict[str, Any]


def follow_fk(db: Database, row: Row, fk: ForeignKey) -> Iterator[Row]:
    """Rows of ``fk.ref_table`` referenced by ``row`` (0 or 1 rows).

    ``row`` must belong to ``fk.table``.  A ``None`` reference yields
    nothing (nullable foreign key).
    """
    value = row[fk.column]
    if value is None:
        return
    if db.has(fk.ref_table, value):
        yield db.get(fk.ref_table, value)


def follow_fk_reverse(db: Database, row: Row, fk: ForeignKey) -> Iterator[Row]:
    """Rows of ``fk.table`` that reference ``row`` of ``fk.ref_table``.

    Uses the hash index on ``fk.table.fk.column`` when present, falling
    back to a full scan otherwise.
    """
    value = row[fk.ref_column]
    yield from db.lookup(fk.table, fk.column, value)


def join_step(db: Database, row: Row, from_table: str, fk: ForeignKey) -> Iterator[Row]:
    """Join one step along ``fk`` from a row of ``from_table``.

    The FK may point either out of or into ``from_table``; the matching
    rows of the *other* table are yielded.  Self-referencing foreign
    keys (``fk.table == fk.ref_table``) are ambiguous here and are not
    supported; model self-relationships through a link table (as the
    bundled datasets do with ``cites``).
    """
    if fk.table == fk.ref_table:
        raise ValueError(
            "join_step cannot disambiguate a self-referencing foreign key; "
            "use a link table instead"
        )
    if fk.table == from_table:
        yield from follow_fk(db, row, fk)
    elif fk.ref_table == from_table:
        yield from follow_fk_reverse(db, row, fk)
    else:
        raise ValueError(
            f"foreign key {fk.table}.{fk.column} does not touch table "
            f"{from_table!r}"
        )
