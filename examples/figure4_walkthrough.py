"""Walk through the paper's Figure 4 example, step by step.

Builds the exact scenario of Section 4.4 — the frequent keyword
``database`` matching 100 papers, ``james`` with one paper, ``john``
with 49, one paper co-authored by both — and shows why Bidirectional
search generates the co-authorship answer after a handful of node
expansions while Backward search must grind through John's papers.

Run:  python examples/figure4_walkthrough.py
"""

from repro.experiments.figure4 import build_figure4_engine, run_figure4
from repro.render import render_tree


def main() -> None:
    engine, meta = build_figure4_engine()
    graph = engine.graph

    print("The Figure 4 graph:")
    print(f"  {graph.num_nodes} nodes, {graph.num_forward_edges} forward edges")
    print(f"  'database' matches {engine.index.frequency('database')} papers")
    print(f"  'james' matches {engine.index.frequency('james')} author")
    print(f"  'john'  matches {engine.index.frequency('john')} author")
    print()

    print("Why Backward search struggles (Section 4.1):")
    print("  - one iterator per keyword node => 102 iterators")
    print("  - John's node has fan-in 49 => huge frontier growth")
    print()

    result = engine.search("database james john", algorithm="bidirectional")
    best = result.best()
    print("Bidirectional's best answer (the co-authored paper):")
    print(render_tree(best.tree, graph))
    print()
    print(
        f"  generated after exploring {best.generated_pops} nodes "
        f"(touching {best.generated_touched})"
    )
    print()

    print(run_figure4().render())


if __name__ == "__main__":
    main()
