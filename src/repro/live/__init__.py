"""Live graph mutation subsystem: versioned datasets over frozen bases.

The BANKS model (and this reproduction's whole stack up to here)
assumes a static graph + index; real keyword-search deployments ingest
updates under live traffic.  This package layers mutability on top of
the frozen substrate without giving up any of its guarantees:

* :mod:`repro.live.mutations` — structured, wire-serializable mutation
  types (``add_node`` / ``add_edge`` / ``remove_edge`` /
  ``update_text``);
* :mod:`repro.live.overlay` — immutable copy-on-write read views
  (:class:`OverlayGraph`, :class:`OverlayIndex`) presenting the full
  ``SearchGraph`` / ``InvertedIndex`` API over a base plus deltas;
* :mod:`repro.live.dataset` — :class:`MutableDataset`, the MVCC epoch
  manager: staged mutations, monotone-versioned commits (in-flight
  searches keep their epoch), incremental backward-weight and posting
  maintenance, and compaction back to flat arrays + versioned disk
  snapshots.

Service integration lives in the owning tiers:
``QueryService.apply`` / ``register_mutable`` (version-keyed result
caching), ``ShardedQueryService.apply`` (replica broadcast) and the
HTTP front-end's ``POST /mutate``.  Durability lives in
:mod:`repro.wal`: pass ``journal=`` (or ``QueryService.attach_wal``) to
append every commit to a crash-recoverable mutation log, and
:meth:`MutableDataset.replay` to reconstruct a dataset from its base
snapshot plus that log.
"""

from repro.live.dataset import Epoch, MutableDataset, MutationOutcome
from repro.live.mutations import (
    AddEdge,
    AddNode,
    Mutation,
    MutationResult,
    RemoveEdge,
    UpdateText,
    coerce_mutation,
    coerce_mutations,
    mutation_from_dict,
    mutation_to_dict,
)
from repro.live.overlay import OverlayGraph, OverlayIndex

__all__ = [
    "AddEdge",
    "AddNode",
    "Epoch",
    "MutableDataset",
    "Mutation",
    "MutationOutcome",
    "MutationResult",
    "OverlayGraph",
    "OverlayIndex",
    "RemoveEdge",
    "UpdateText",
    "coerce_mutation",
    "coerce_mutations",
    "mutation_from_dict",
    "mutation_to_dict",
]
