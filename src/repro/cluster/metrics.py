"""Merging per-worker ``ServiceMetrics`` exports into one cluster view.

Counters add; rates are recomputed from the summed numerators and
denominators (averaging per-worker hit rates would weight an idle
worker the same as a loaded one); latency percentiles are recomputed
from the *concatenated* raw samples — a percentile of percentiles is
not a percentile, which is why workers export their reservoirs
(``ServiceMetrics.export(include_samples=True)``) instead of just the
summary rows.

The merge is tolerant of heterogeneous parts: the supervisor's local
metrics (deadline misses, malformed requests, crash errors) carry no
``cache`` or ``datasets`` section, and a part recorded without samples
merges with ``None`` percentiles rather than silently wrong ones.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from repro.service.metrics import EXPORTED_PERCENTILES, percentile
from repro.telemetry.metrics import merge_registries

__all__ = ["merge_metrics"]


def _merge_algorithm(parts: list[dict]) -> dict:
    requests = sum(part.get("requests", 0) for part in parts)
    count = sum(part.get("latency_count", 0) for part in parts)
    total = 0.0
    mean: Optional[float] = None
    for part in parts:
        part_mean = part.get("latency_mean")
        if part_mean is not None:
            total += part_mean * part.get("latency_count", 0)
    if count:
        mean = total / count

    samples: list[float] = []
    samples_complete = True
    for part in parts:
        part_samples = part.get("latency_samples")
        if part_samples is None:
            if part.get("latency_count", 0):
                samples_complete = False
        else:
            samples.extend(part_samples)

    merged = {
        "requests": requests,
        "latency_count": count,
        "latency_mean": mean,
    }
    for q in EXPORTED_PERCENTILES:
        merged[f"latency_p{q:g}"] = (
            percentile(samples, q) if samples_complete else None
        )
    merged["latency_samples"] = samples if samples_complete else None
    return merged


def _merge_cache(parts: list[dict]) -> dict:
    hits = sum(part.get("hits", 0) for part in parts)
    misses = sum(part.get("misses", 0) for part in parts)
    lookups = hits + misses
    ttls = {part.get("ttl") for part in parts}
    return {
        "size": sum(part.get("size", 0) for part in parts),
        "capacity": sum(part.get("capacity", 0) for part in parts),
        "ttl": ttls.pop() if len(ttls) == 1 else None,
        "hits": hits,
        "misses": misses,
        "hit_rate": (hits / lookups) if lookups else 0.0,
        "evictions": sum(part.get("evictions", 0) for part in parts),
        "expirations": sum(part.get("expirations", 0) for part in parts),
    }


def _merge_datasets(parts: list[dict]) -> dict:
    registered: set[str] = set()
    built: set[str] = set()
    build_seconds: dict[str, float] = {}
    versions: dict[str, set[int]] = {}
    wal_seq: dict[str, int] = {}
    for part in parts:
        registered.update(part.get("registered", ()))
        built.update(part.get("built", ()))
        for name, seconds in part.get("build_seconds", {}).items():
            # Replicas each pay their own build; report the slowest —
            # the one that gates a fleet-wide warmup.
            build_seconds[name] = max(build_seconds.get(name, 0.0), seconds)
        for name, version in part.get("versions", {}).items():
            versions.setdefault(name, set()).add(version)
        for name, seq in part.get("wal_seq", {}).items():
            # Replicas replaying one shared log report the same logical
            # tip; the highest is the durable truth, laggards are drift.
            wal_seq[name] = max(wal_seq.get(name, 0), int(seq))
    merged = {
        "registered": sorted(registered),
        "built": sorted(built),
        "build_seconds": dict(sorted(build_seconds.items())),
        # Highest epoch wins; replicas behind it show up in
        # version_drift — the signal a mutation broadcast missed one.
        "versions": {name: max(seen) for name, seen in sorted(versions.items())},
        "version_drift": sorted(
            name for name, seen in versions.items() if len(seen) > 1
        ),
    }
    if wal_seq:
        merged["wal_seq"] = dict(sorted(wal_seq.items()))
    return merged


def merge_metrics(parts: Sequence[dict]) -> dict:
    """Merge ``QueryService.metrics()``-shaped dicts into one.

    Accepts any mix of full worker exports and bare ``ServiceMetrics``
    exports; missing sections are simply skipped.  The result has the
    same shape as a single service's metrics dict, so dashboards and
    tests treat one worker and a whole cluster uniformly.
    """
    errors: Counter = Counter()
    for part in parts:
        errors.update(part.get("errors", {}))
    cancellations = {
        key: sum(
            part.get("cancellations", {}).get(key, 0) for part in parts
        )
        for key in (
            "cancelled",
            "deadline_exceeded",
            "reclaimed_seconds",
            "overrun_seconds",
        )
    }
    cache_hits = sum(part.get("cache_hits", 0) for part in parts)
    cache_misses = sum(part.get("cache_misses", 0) for part in parts)
    lookups = cache_hits + cache_misses

    algorithm_parts: dict[str, list[dict]] = {}
    for part in parts:
        for name, entry in part.get("algorithms", {}).items():
            algorithm_parts.setdefault(name, []).append(entry)

    merged = {
        "requests_total": sum(part.get("requests_total", 0) for part in parts),
        "errors_total": sum(part.get("errors_total", 0) for part in parts),
        "errors": dict(sorted(errors.items())),
        "cancellations": cancellations,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "cache_hit_rate": (cache_hits / lookups) if lookups else 0.0,
        "algorithms": {
            name: _merge_algorithm(entries)
            for name, entries in sorted(algorithm_parts.items())
        },
    }
    cache_parts = [part["cache"] for part in parts if "cache" in part]
    if cache_parts:
        merged["cache"] = _merge_cache(cache_parts)
    dataset_parts = [part["datasets"] for part in parts if "datasets" in part]
    if dataset_parts:
        merged["datasets"] = _merge_datasets(dataset_parts)
    registry_parts = [part["registry"] for part in parts if "registry" in part]
    if registry_parts:
        merged["registry"] = merge_registries(registry_parts)
    return merged
