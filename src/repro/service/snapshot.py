"""Versioned disk snapshots of built engine state (EMBANKS direction).

Building an engine from a database does three expensive things — graph
construction, biased-PageRank prestige and inverted-index construction.
EMBANKS (Gupta & Sudarshan) argues that disk-resident graph/index state
is what makes BANKS deployments restart-friendly; this module is that
idea for the service layer: one self-describing file holding the frozen
:class:`~repro.graph.SearchGraph` (both adjacency sides, in original
edge order), its prestige vector and the
:class:`~repro.index.InvertedIndex`, so a warm start skips
``KeywordSearchEngine.from_database`` entirely.

Format (version 1): a single zip container (``numpy.savez_compressed``)
of flat arrays —

* ``meta``: UTF-8 JSON bytes (uint8): format magic, version, node
  labels/tables/refs, index terms and counts.  Everything that is text.
* ``out_indptr``/``out_dst``/``out_weight``/``out_fwd`` and the ``in_*``
  equivalents: CSR-shaped combined adjacency, weights as float64 so a
  restored graph scores answers bit-identically.
* ``prestige``, ``in_invw``, ``out_invw``: float64 per node — prestige
  plus the two activation normalizers, stored (not recomputed) so the
  restored values match the builder's summation bit for bit.
* ``post_indptr``/``post_nodes`` and ``rel_indptr``/``rel_nodes``:
  concatenated postings per index term (sorted node ids; postings are
  sets, so order carries no meaning).

No pickle anywhere — ``numpy.load`` runs with ``allow_pickle=False`` —
so loading a snapshot executes no code from the file.  Incompatible or
corrupt files raise :class:`~repro.errors.SnapshotError`.  Snapshots
capture frozen state: they are written once and never invalidated
(rebuild and re-save to pick up new data), mirroring the engine's own
"index is frozen" contract.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import SnapshotError
from repro.graph.searchgraph import SearchGraph
from repro.index.inverted import InvertedIndex

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "save_snapshot",
    "load_snapshot",
    "save_engine",
    "load_engine",
    "snapshot_info",
]

SNAPSHOT_FORMAT = "repro-engine-snapshot"
SNAPSHOT_VERSION = 1


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def _pack_adjacency(adjacency) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    total = sum(len(edges) for edges in adjacency)
    dst = np.zeros(total, dtype=np.int32)
    weight = np.zeros(total, dtype=np.float64)
    fwd = np.zeros(total, dtype=np.uint8)
    pos = 0
    for u, edges in enumerate(adjacency):
        indptr[u] = pos
        for v, w, is_forward in edges:
            dst[pos] = v
            weight[pos] = w
            fwd[pos] = 1 if is_forward else 0
            pos += 1
    indptr[len(adjacency)] = pos
    return indptr, dst, weight, fwd


def _pack_postings(postings: dict) -> tuple[list[str], np.ndarray, np.ndarray]:
    terms = sorted(postings)
    indptr = np.zeros(len(terms) + 1, dtype=np.int64)
    total = sum(len(postings[term]) for term in terms)
    nodes = np.zeros(total, dtype=np.int32)
    pos = 0
    for i, term in enumerate(terms):
        indptr[i] = pos
        for node in sorted(postings[term]):
            nodes[pos] = node
            pos += 1
    indptr[len(terms)] = pos
    return terms, indptr, nodes


def _encode_refs(graph: SearchGraph) -> list:
    refs = []
    for node in graph.nodes():
        ref = graph.ref(node)
        if ref is None:
            refs.append(None)
            continue
        table, pk = ref
        if not isinstance(pk, (int, str)):
            raise SnapshotError(
                f"node {node} has non-serializable primary key {pk!r} "
                f"(snapshot format v{SNAPSHOT_VERSION} supports int and str keys)"
            )
        # Tag the pk type so int keys don't come back as strings.
        refs.append([table, "i" if isinstance(pk, int) else "s", pk])
    return refs


def _content_digest(meta: dict, arrays: dict) -> str:
    """Deterministic sha256 over the snapshot's logical content.

    Computed from the packed arrays and text metadata, **not** the file
    bytes (the zip container embeds timestamps), so two snapshots of
    the same dataset state digest identically across machines and runs
    — what lets a worker reload no-op when it already holds the epoch.
    The ``dataset_version`` field is deliberately excluded: version is
    provenance, digest is content.
    """
    hasher = hashlib.sha256()
    for field in ("num_nodes", "num_forward_edges", "labels", "tables", "refs",
                  "post_terms", "rel_terms"):
        hasher.update(field.encode("utf-8"))
        hasher.update(json.dumps(meta[field], ensure_ascii=False).encode("utf-8"))
    for name in sorted(arrays):
        hasher.update(name.encode("utf-8"))
        hasher.update(arrays[name].tobytes())
    return hasher.hexdigest()


def save_snapshot(
    path: Union[str, os.PathLike],
    graph: SearchGraph,
    index: InvertedIndex,
    *,
    version: int = 0,
) -> Path:
    """Serialize ``graph`` + ``index`` (+ prestige) to ``path``.

    The write goes through a temporary sibling file and an atomic rename,
    so a crash mid-save never leaves a truncated snapshot behind.
    Returns the path written.

    ``version`` records the dataset's epoch (``dataset_version`` in the
    header), and a ``content_digest`` over the packed arrays is stored
    alongside it — together they let a worker reload decide it already
    holds the current state and no-op (:func:`snapshot_info` surfaces
    both without decompressing the graph).
    """
    path = Path(path)
    out_indptr, out_dst, out_weight, out_fwd = _pack_adjacency(graph._out)
    in_indptr, in_src, in_weight, in_fwd = _pack_adjacency(graph._in)
    postings, relation_nodes = index._export_postings()
    post_terms, post_indptr, post_nodes = _pack_postings(postings)
    rel_terms, rel_indptr, rel_nodes = _pack_postings(relation_nodes)

    meta = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "num_nodes": graph.num_nodes,
        "num_forward_edges": graph.num_forward_edges,
        "labels": list(graph._labels),
        "tables": list(graph._tables),
        "refs": _encode_refs(graph),
        "post_terms": post_terms,
        "rel_terms": rel_terms,
        "dataset_version": int(version),
    }
    meta["content_digest"] = _content_digest(
        meta,
        {
            "out_indptr": out_indptr,
            "out_dst": out_dst,
            "out_weight": out_weight,
            "out_fwd": out_fwd,
            "in_indptr": in_indptr,
            "in_src": in_src,
            "in_weight": in_weight,
            "in_fwd": in_fwd,
            "prestige": np.asarray(graph.prestige, dtype=np.float64),
            "in_invw": np.asarray(graph._in_inv_weight_sum, dtype=np.float64),
            "out_invw": np.asarray(graph._out_inv_weight_sum, dtype=np.float64),
            "post_indptr": post_indptr,
            "post_nodes": post_nodes,
            "rel_indptr": rel_indptr,
            "rel_nodes": rel_nodes,
        },
    )
    meta_bytes = np.frombuffer(
        json.dumps(meta, ensure_ascii=False).encode("utf-8"), dtype=np.uint8
    )

    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        meta=meta_bytes,
        out_indptr=out_indptr,
        out_dst=out_dst,
        out_weight=out_weight,
        out_fwd=out_fwd,
        in_indptr=in_indptr,
        in_src=in_src,
        in_weight=in_weight,
        in_fwd=in_fwd,
        prestige=np.asarray(graph.prestige, dtype=np.float64),
        in_invw=np.asarray(graph._in_inv_weight_sum, dtype=np.float64),
        out_invw=np.asarray(graph._out_inv_weight_sum, dtype=np.float64),
        post_indptr=post_indptr,
        post_nodes=post_nodes,
        rel_indptr=rel_indptr,
        rel_nodes=rel_nodes,
    )
    tmp = path.with_name(path.name + ".tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(buffer.getvalue())
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise SnapshotError(f"cannot write snapshot to {path}: {exc}") from exc
    return path


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _unpack_adjacency(indptr, target, weight, fwd) -> list[list[tuple]]:
    targets = target.tolist()
    weights = weight.tolist()
    forwards = fwd.astype(bool).tolist()
    bounds = indptr.tolist()
    return [
        list(zip(targets[lo:hi], weights[lo:hi], forwards[lo:hi]))
        for lo, hi in zip(bounds, bounds[1:])
    ]


def _unpack_postings(terms, indptr, nodes) -> dict[str, list[int]]:
    flat = nodes.tolist()
    bounds = indptr.tolist()
    return {
        term: flat[bounds[i] : bounds[i + 1]] for i, term in enumerate(terms)
    }


def _decode_refs(encoded: list) -> list:
    refs = []
    for entry in encoded:
        if entry is None:
            refs.append(None)
            continue
        table, kind, pk = entry
        refs.append((table, int(pk) if kind == "i" else str(pk)))
    return refs


def _read_archive(
    path: Union[str, os.PathLike], *, only_meta: bool = False
) -> tuple[dict, dict]:
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            # np.load decompresses lazily per-array: header-only readers
            # (snapshot_info) pull just the meta block, not the graph.
            names = ["meta"] if only_meta and "meta" in archive.files else archive.files
            arrays = {name: archive[name] for name in names}
    except FileNotFoundError:
        raise SnapshotError(f"snapshot file {path} does not exist") from None
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        # BadZipFile/EOFError: a truncated or corrupt container.
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if "meta" not in arrays:
        raise SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file (no meta)")
    try:
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt meta block: {exc}") from exc
    if meta.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} has format {meta.get('format')!r}, expected {SNAPSHOT_FORMAT!r}"
        )
    if meta.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} is snapshot version {meta.get('version')!r}; this build "
            f"reads version {SNAPSHOT_VERSION}"
        )
    return meta, arrays


def snapshot_info(path: Union[str, os.PathLike]) -> dict:
    """Cheap header inspection: versions, digest and size counters.

    ``dataset_version`` and ``content_digest`` are None for snapshots
    written before they existed (the format is otherwise unchanged —
    old files load fine).
    """
    meta, _ = _read_archive(path, only_meta=True)
    return {
        "format": meta["format"],
        "version": meta["version"],
        "dataset_version": meta.get("dataset_version"),
        "content_digest": meta.get("content_digest"),
        "num_nodes": meta["num_nodes"],
        "num_forward_edges": meta["num_forward_edges"],
        "index_terms": len(meta["post_terms"]),
        "relation_terms": len(meta["rel_terms"]),
        "file_bytes": Path(path).stat().st_size,
    }


def load_snapshot(
    path: Union[str, os.PathLike],
) -> tuple[SearchGraph, InvertedIndex]:
    """Restore the ``(graph, index)`` pair saved by :func:`save_snapshot`."""
    meta, arrays = _read_archive(path)
    required = (
        "out_indptr", "out_dst", "out_weight", "out_fwd",
        "in_indptr", "in_src", "in_weight", "in_fwd",
        "prestige", "in_invw", "out_invw",
        "post_indptr", "post_nodes", "rel_indptr", "rel_nodes",
    )
    missing = [name for name in required if name not in arrays]
    if missing:
        raise SnapshotError(f"{path} is missing arrays: {', '.join(missing)}")

    num_nodes = int(meta["num_nodes"])
    for field in ("labels", "tables", "refs"):
        if len(meta[field]) != num_nodes:
            raise SnapshotError(f"{path} metadata is inconsistent: bad {field} length")
    if len(arrays["prestige"]) != num_nodes:
        raise SnapshotError(f"{path} metadata is inconsistent with its arrays")
    # A corrupt file must fail here, not as an IndexError (or a silent
    # negative-index mis-score or mis-slice) deep inside a later search.
    # Adjacency and postings use the same CSR shape, so one checker
    # covers all four array pairs.
    csr_pairs = (
        ("out_indptr", "out_dst", num_nodes),
        ("in_indptr", "in_src", num_nodes),
        ("post_indptr", "post_nodes", len(meta["post_terms"])),
        ("rel_indptr", "rel_nodes", len(meta["rel_terms"])),
    )
    for indptr_name, ids_name, num_rows in csr_pairs:
        indptr, ids = arrays[indptr_name], arrays[ids_name]
        if (
            len(indptr) != num_rows + 1
            or indptr[0] != 0
            or indptr[-1] != len(ids)
            or np.any(np.diff(indptr) < 0)
        ):
            raise SnapshotError(f"{path} has a malformed {indptr_name} array")
        if ids.size and (ids.min() < 0 or ids.max() >= num_nodes):
            raise SnapshotError(
                f"{path} has out-of-range node ids in {ids_name} "
                f"(expected [0, {num_nodes}))"
            )
    try:
        graph = SearchGraph._from_adjacency(
            out=_unpack_adjacency(
                arrays["out_indptr"], arrays["out_dst"],
                arrays["out_weight"], arrays["out_fwd"],
            ),
            in_=_unpack_adjacency(
                arrays["in_indptr"], arrays["in_src"],
                arrays["in_weight"], arrays["in_fwd"],
            ),
            labels=meta["labels"],
            tables=meta["tables"],
            refs=_decode_refs(meta["refs"]),
            num_forward_edges=meta["num_forward_edges"],
            prestige=arrays["prestige"],
            in_inv_weight_sum=arrays["in_invw"].tolist(),
            out_inv_weight_sum=arrays["out_invw"].tolist(),
        )
    except ValueError as exc:
        # Residual inconsistencies (e.g. negative prestige) the explicit
        # checks above did not name.
        raise SnapshotError(f"{path} is corrupt: {exc}") from exc
    index = InvertedIndex._from_postings(
        _unpack_postings(
            meta["post_terms"], arrays["post_indptr"], arrays["post_nodes"]
        ),
        _unpack_postings(meta["rel_terms"], arrays["rel_indptr"], arrays["rel_nodes"]),
    )
    return graph, index


# ----------------------------------------------------------------------
# engine conveniences
# ----------------------------------------------------------------------
def save_engine(path: Union[str, os.PathLike], engine, *, version: int = 0) -> Path:
    """Snapshot a :class:`~repro.core.engine.KeywordSearchEngine`'s state.

    Search parameters are *not* stored — they are run-time configuration,
    not dataset state — so :func:`load_engine` accepts them explicitly.
    ``version`` stamps the dataset epoch into the header.
    """
    return save_snapshot(path, engine.graph, engine.index, version=version)


def load_engine(path: Union[str, os.PathLike], *, params=None):
    """Rebuild a ready-to-query engine from a snapshot file."""
    from repro.core.engine import KeywordSearchEngine

    graph, index = load_snapshot(path)
    return KeywordSearchEngine(graph, index, params=params)


# ----------------------------------------------------------------------
# command line: provision shard fleets from the shell
# ----------------------------------------------------------------------
def _make_dataset(name: str, scale: float):
    """Build one of the synthetic databases by name, scaled."""
    from repro.datasets import (
        DblpConfig,
        ImdbConfig,
        PatentsConfig,
        make_dblp,
        make_imdb,
        make_patents,
    )

    makers = {
        "dblp": (make_dblp, DblpConfig),
        "imdb": (make_imdb, ImdbConfig),
        "patents": (make_patents, PatentsConfig),
    }
    try:
        make, config_cls = makers[name]
    except KeyError:
        raise SystemExit(
            f"unknown dataset {name!r}; expected one of {sorted(makers)}"
        ) from None
    return make(config_cls().scaled(scale))


def main(argv=None) -> int:
    """``python -m repro.service.snapshot`` — inspect and create snapshots.

    ``info <path>`` prints the versioned header fields from
    :func:`snapshot_info` plus, when a sibling ``<path>.wal`` mutation
    log exists, its last durable sequence number and the count of
    commits the log holds beyond this snapshot's ``dataset_version`` —
    the at-a-glance "does the WAL carry unsnapshotted state" check.
    ``save <dataset> <path>`` builds a synthetic dataset (``dblp`` /
    ``imdb`` / ``patents``, optionally ``--scale``d) and writes its
    engine snapshot, so a shard fleet can be provisioned entirely from
    the shell.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.snapshot",
        description="Inspect and create engine snapshot files.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info_cmd = commands.add_parser("info", help="print a snapshot's header fields")
    info_cmd.add_argument("path", help="snapshot file to inspect")

    save_cmd = commands.add_parser(
        "save", help="build a synthetic dataset and snapshot its engine"
    )
    save_cmd.add_argument(
        "dataset", help="dataset to build: dblp, imdb or patents"
    )
    save_cmd.add_argument("path", help="snapshot file to write")
    save_cmd.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset size multiplier (default 1.0)",
    )
    args = parser.parse_args(argv)

    if args.command == "info":
        try:
            info = snapshot_info(args.path)
        except SnapshotError as exc:
            print(f"error: {exc}")
            return 1
        for key, value in info.items():
            print(f"{key} = {value}")
        # A sibling WAL (the <snapshot>.wal convention) may hold commits
        # newer than this file: surface both positions so an operator
        # sees at a glance whether the log carries unsnapshotted state.
        from repro.wal.log import MutationLog, default_wal_path

        wal_path = default_wal_path(args.path)
        wal = MutationLog.peek(wal_path)
        if wal is not None:
            print(f"wal_path = {wal_path}")
            print(f"wal_seq = {wal['last_seq']}")
            print(f"wal_segments = {wal['segments']}")
            unsnapshotted = wal["last_seq"] - int(info["dataset_version"] or 0)
            print(f"wal_unsnapshotted_commits = {max(unsnapshotted, 0)}")
        return 0

    # save
    from repro.core.engine import KeywordSearchEngine

    db = _make_dataset(args.dataset, args.scale)
    engine = KeywordSearchEngine.from_database(db)
    written = save_engine(args.path, engine)
    print(
        f"wrote {written} ({written.stat().st_size} bytes): "
        f"{engine.graph.num_nodes} nodes, "
        f"{engine.graph.num_forward_edges} forward edges"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
