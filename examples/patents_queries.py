"""US-Patent-style session: hub-node stress (UQ1 "Microsoft recovery").

Assignee companies are extreme hubs — one company node is referenced by
a large fraction of all patents.  Backward search entering such a hub
must fan out over every patent; Bidirectional search instead runs
forward from candidate roots.  This example measures exactly that, and
shows the depth-cutoff (dmax) and top-k knobs of the public API.

Run:  python examples/patents_queries.py
"""

import time

from repro import KeywordSearchEngine, SearchParams
from repro.datasets import PatentsConfig, make_patents
from repro.render import render_tree


def main() -> None:
    db = make_patents(PatentsConfig())
    engine = KeywordSearchEngine.from_database(db)
    print(f"synthetic patents: {db.total_rows()} tuples -> {engine.graph}")

    # The biggest assignee hub (company 1 by construction).
    company = db.get("company", 1)["name"]
    hub_node = engine.graph.node_by_ref("company", 1)
    print(
        f"hub: {company} holds "
        f"{len(db.lookup('patent', 'company_id', 1))} patents "
        f"(graph in-degree {engine.graph.in_degree(hub_node)})"
    )
    print()

    query = f"{company.split()[0].lower()} recovery"
    print(f"query: {query!r}  origins={engine.origin_sizes(query)}")
    for algorithm in ("bidirectional", "si-backward", "mi-backward"):
        start = time.perf_counter()
        result = engine.search(query, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        print(
            f"  {algorithm:<13} answers={len(result.answers):<3} "
            f"explored={result.stats.nodes_explored:<6} time={elapsed:.3f}s"
        )
    print()

    result = engine.search(query, k=2)
    for rank, answer in enumerate(result.answers, start=1):
        print(f"answer {rank}:")
        print(render_tree(answer.tree, engine.graph))
        print()

    # Tighter depth cutoff: cheaper, may lose distant answers (ABL2).
    for dmax in (4, 8):
        params = SearchParams(dmax=dmax)
        result = engine.search(query, params=params)
        print(
            f"dmax={dmax}: {len(result.answers)} answers, "
            f"{result.stats.nodes_explored} nodes explored"
        )


if __name__ == "__main__":
    main()
