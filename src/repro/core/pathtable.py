"""Shared single-iterator state: distances, ``sp`` pointers, ATTACH.

Bidirectional and SI-Backward search keep, for every node ``u`` reached
so far and every keyword ``t_i`` (paper Figure 2):

* ``dist[u][i]`` — length of the best known path from ``u`` down to a
  node matching ``t_i``;
* ``sp[u][i]`` — the child to follow from ``u`` on that path;
* ``P[v]`` — the explored parents of ``v``: nodes ``u`` such that the
  edge ``(u, v)`` has been explored.

When a distance improves, the change must be pushed to every reached
ancestor (procedure ATTACH, Figure 3) — that is exactly a best-first
relaxation through the explored-parents map, implemented here once and
shared by both algorithms.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Callable, Iterable, Optional, Sequence

__all__ = ["PathTable"]


class PathTable:
    """Per-keyword distance/successor table with upward propagation."""

    def __init__(
        self,
        graph,
        keyword_sets: Sequence[frozenset[int]],
        *,
        on_dist_change: Optional[Callable[[int], None]] = None,
    ) -> None:
        """
        Parameters
        ----------
        graph:
            The search graph (used only to size sanity checks; edges are
            supplied by the caller as it explores them).
        keyword_sets:
            ``S_i`` per query keyword.
        on_dist_change:
            Invoked with the node id after any of its distances
            improves (queue-priority upkeep for SI-Backward).
        """
        self._graph = graph
        self.keyword_sets = tuple(frozenset(s) for s in keyword_sets)
        self.k = len(self.keyword_sets)
        if self.k == 0:
            raise ValueError("at least one keyword set is required")
        self._dist: list[dict[int, float]] = [dict() for _ in range(self.k)]
        # sp[i][u] = (child, edge weight) of the best edge out of u for i.
        self._sp: list[dict[int, tuple[int, float]]] = [dict() for _ in range(self.k)]
        self._parents: dict[int, dict[int, float]] = {}
        self._finite_count: dict[int, int] = {}
        self._on_dist_change = on_dist_change
        #: Rows written by ATTACH cascades — harvested into
        #: ``SearchStats.cascade_touches`` by the owning search.
        self.cascade_touches = 0

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def seed(self, node: int) -> tuple[int, ...]:
        """Set ``dist = 0`` for every keyword ``node`` matches.

        Returns the matched keyword indices (empty if none).
        """
        matched = tuple(
            i for i, nodes in enumerate(self.keyword_sets) if node in nodes
        )
        for i in matched:
            if self._dist[i].get(node, inf) > 0.0:
                self._dist[i][node] = 0.0
                self._sp[i].pop(node, None)
                self._bump_finite(node)
        return matched

    def seed_all(self) -> set[int]:
        """Seed every keyword node; returns the union of the ``S_i``."""
        seeds: set[int] = set()
        for nodes in self.keyword_sets:
            seeds.update(nodes)
        for node in seeds:
            self.seed(node)
        return seeds

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def dist(self, node: int, i: int) -> float:
        return self._dist[i].get(node, inf)

    def dist_vector(self, node: int) -> tuple[float, ...]:
        return tuple(self._dist[i].get(node, inf) for i in range(self.k))

    def min_dist(self, node: int) -> float:
        """Distance to the nearest keyword (SI-Backward's priority)."""
        return min(self.dist_vector(node))

    def is_complete(self, node: int) -> bool:
        """Has ``node`` a known path to every keyword? (Figure 3 Is-Complete)"""
        return self._finite_count.get(node, 0) == self.k

    def known_keywords(self, node: int) -> int:
        return self._finite_count.get(node, 0)

    def seen_nodes(self) -> Iterable[int]:
        """Nodes with at least one finite distance."""
        return self._finite_count.keys()

    def parents_of(self, node: int) -> dict[int, float]:
        return self._parents.get(node, {})

    def parents_map(self) -> dict[int, dict[int, float]]:
        """The full explored-parents map ``P`` (Figure 2), shared with the
        ACTIVATE cascade so activation flows along explored edges only."""
        return self._parents

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------
    def explore_edge(self, u: int, v: int, w: float) -> set[int]:
        """Explore edge ``(u, v)``: register the parent link and pull
        ``v``'s distances into ``u``, cascading improvements upward.

        Returns the set of nodes that became or remained *complete*
        while their distances changed — the caller emits answer trees
        for them (Figure 3 ExploreEdge lines 1-5 plus ATTACH).
        """
        if w <= 0.0:
            raise ValueError(f"edge weight must be > 0, got {w!r}")
        bucket = self._parents.setdefault(v, {})
        prev = bucket.get(u)
        if prev is None or w < prev:
            bucket[u] = w
        completions: set[int] = set()
        for i in range(self.k):
            dv = self._dist[i].get(v)
            if dv is None:
                continue
            nd = dv + w
            if nd < self._dist[i].get(u, inf):
                self._set_dist(u, i, nd, v, w, completions)
                self._propagate_up(u, i, completions)
        return completions

    def _propagate_up(self, start: int, i: int, completions: set[int]) -> None:
        """ATTACH: best-first push of an improved ``dist[·][i]`` to
        reached ancestors through the explored-parents map."""
        heap = [(self._dist[i][start], start)]
        while heap:
            d, x = heapq.heappop(heap)
            if d > self._dist[i].get(x, inf):
                continue  # stale entry
            for parent, w in self._parents.get(x, {}).items():
                nd = d + w
                if nd < self._dist[i].get(parent, inf):
                    self._set_dist(parent, i, nd, x, w, completions)
                    heapq.heappush(heap, (nd, parent))

    def _set_dist(
        self,
        node: int,
        i: int,
        value: float,
        child: int,
        weight: float,
        completions: set[int],
    ) -> None:
        self.cascade_touches += 1
        if node not in self._dist[i]:
            self._bump_finite(node)
        self._dist[i][node] = value
        self._sp[i][node] = (child, weight)
        if self.is_complete(node):
            completions.add(node)
        if self._on_dist_change is not None:
            self._on_dist_change(node)

    def _bump_finite(self, node: int) -> None:
        self._finite_count[node] = self._finite_count.get(node, 0) + 1

    # ------------------------------------------------------------------
    # tree extraction
    # ------------------------------------------------------------------
    def build_paths(
        self, root: int
    ) -> tuple[list[tuple[int, ...]], list[float]]:
        """Follow the ``sp`` pointers from ``root`` to each keyword.

        Returns per-keyword ``(path, actual path weight)``; the weight is
        re-summed from the stored edge weights so emitted trees are
        scored on their true cost even if a propagation cascade is still
        in flight (the table's recorded ``dist`` may lag briefly).
        """
        if not self.is_complete(root):
            raise ValueError(f"node {root} has no path to every keyword")
        paths: list[tuple[int, ...]] = []
        weights: list[float] = []
        limit = self._graph.num_nodes + 1
        for i in range(self.k):
            node = root
            path = [node]
            total = 0.0
            steps = 0
            while self._dist[i].get(node, inf) > 0.0:
                child, w = self._sp[i][node]
                total += w
                node = child
                path.append(node)
                steps += 1
                if steps > limit:  # pragma: no cover - defensive
                    raise RuntimeError("sp pointer cycle detected")
            paths.append(tuple(path))
            weights.append(total)
        return paths, weights
