"""ASCII rendering of answer trees for the examples and CLI output."""

from __future__ import annotations

from repro.core.answer import AnswerTree

__all__ = ["render_tree", "render_result"]


def _node_name(graph, node: int) -> str:
    if graph is None:
        return str(node)
    label = graph.label(node)
    table = graph.table(node)
    prefix = f"{table}#" if table else "#"
    return f"{prefix}{node} {label}".strip()


def render_tree(tree: AnswerTree, graph=None, *, matched_marker: str = "*") -> str:
    """Indented ASCII view of an answer tree.

    Matched keyword nodes are marked; edge weights resolved through the
    graph when available.
    """
    children: dict[int, list[int]] = {}
    for parent, child in sorted(tree.edges()):
        children.setdefault(parent, []).append(child)
    matched = set(tree.matched_nodes())

    lines = [
        f"score={tree.score:.4g}  E={tree.edge_score:.3g}  "
        f"N={tree.node_score:.3g}  size={tree.size()}"
    ]

    def walk(node: int, depth: int) -> None:
        marker = f" {matched_marker}" if node in matched else ""
        indent = "  " * depth + ("+- " if depth else "")
        lines.append(f"{indent}{_node_name(graph, node)}{marker}")
        for child in children.get(node, ()):  # deterministic order
            walk(child, depth + 1)

    walk(tree.root, 0)
    return "\n".join(lines)


def render_result(result, graph=None, *, limit: int = 5) -> str:
    """Render the top answers of a :class:`SearchResult`."""
    header = (
        f"{result.algorithm}: {len(result.answers)} answers for "
        f"{' '.join(result.keywords)}"
    )
    blocks = [header]
    for rank, answer in enumerate(result.answers[:limit], start=1):
        blocks.append(f"--- answer {rank} ---")
        blocks.append(render_tree(answer.tree, graph))
    return "\n".join(blocks)
