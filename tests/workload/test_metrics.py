"""Workload metrics: measurement points, recall/precision."""

import pytest

from repro.core.answer import OutputAnswer, SearchResult
from repro.core.stats import SearchStats
from repro.workload.metrics import (
    measure_at_last_relevant,
    precision_at_full_recall,
    recall,
    recall_precision_curve,
)

from tests.core.test_answer import make_tree


def result_with(trees):
    stats = SearchStats()
    stats.nodes_explored = 100
    stats.nodes_touched = 200
    stats.finish()
    answers = [
        OutputAnswer(
            tree=tree,
            generated_at=float(i),
            generated_pops=10 * (i + 1),
            output_at=float(i) + 0.5,
            output_pops=20 * (i + 1),
            generated_touched=30 * (i + 1),
            output_touched=40 * (i + 1),
        )
        for i, tree in enumerate(trees)
    ]
    return SearchResult(algorithm="x", keywords=("k",), answers=answers, stats=stats)


def trees(n):
    return [make_tree(0, [(0, i + 1), (0, n + i + 1)], score=1.0 - i * 0.1) for i in range(n)]


class TestMeasureAtLastRelevant:
    def test_last_relevant_selected(self):
        ts = trees(3)
        result = result_with(ts)
        relevant = {ts[0].signature(), ts[2].signature()}
        point = measure_at_last_relevant(result, relevant)
        assert point.rank == 3
        assert point.relevant_found == 2
        assert point.out_pops == 60
        assert point.gen_pops == 30
        assert point.out_touched == 120
        assert point.total_pops == 100

    def test_nth_caps_measurement(self):
        ts = trees(5)
        result = result_with(ts)
        relevant = {t.signature() for t in ts}
        point = measure_at_last_relevant(result, relevant, nth=2)
        assert point.rank == 2

    def test_no_relevant_returns_none(self):
        ts = trees(2)
        result = result_with(ts)
        other = make_tree(9, [(9, 10), (9, 11)])
        assert measure_at_last_relevant(result, {other.signature()}) is None


class TestRecallPrecision:
    def test_perfect_ranking(self):
        ts = trees(3)
        relevant = {t.signature() for t in ts}
        curve = recall_precision_curve([t.signature() for t in ts], relevant)
        assert curve[-1] == (1.0, 1.0)
        assert precision_at_full_recall([t.signature() for t in ts], relevant) == 1.0

    def test_interleaved_irrelevant(self):
        ts = trees(4)
        relevant = {ts[0].signature(), ts[2].signature()}
        order = [t.signature() for t in ts]
        curve = recall_precision_curve(order, relevant)
        assert curve[0] == (0.5, 1.0)
        assert curve[2] == (1.0, pytest.approx(2 / 3))
        assert precision_at_full_recall(order, relevant) == pytest.approx(2 / 3)

    def test_full_recall_never_reached(self):
        ts = trees(2)
        missing = make_tree(9, [(9, 10), (9, 11)])
        relevant = {ts[0].signature(), missing.signature()}
        order = [t.signature() for t in ts]
        assert precision_at_full_recall(order, relevant) is None
        assert recall(order, relevant) == 0.5

    def test_recall_ignores_duplicates(self):
        ts = trees(1)
        relevant = {ts[0].signature()}
        assert recall([ts[0].signature()] * 3, relevant) == 1.0

    def test_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            recall([], set())
        with pytest.raises(ValueError):
            recall_precision_curve([], set())
