"""SamplingProfiler: folding, snapshot diffs, fleet merge, lifecycle."""

import threading
import time

import pytest

from repro.telemetry.profile import (
    SamplingProfiler,
    diff_profiles,
    merge_profiles,
    render_collapsed,
)


def spin_until(event: threading.Event) -> None:
    while not event.is_set():
        time.sleep(0.001)


class TestSampling:
    def test_sample_once_folds_live_threads(self):
        profiler = SamplingProfiler(interval=0.01)
        stop = threading.Event()
        worker = threading.Thread(
            target=spin_until, args=(stop,), name="spinny"
        )
        worker.start()
        try:
            for _ in range(5):
                assert profiler.sample_once() > 0
        finally:
            stop.set()
            worker.join()
        snap = profiler.snapshot()
        assert snap["total"] >= 5
        spinny = [s for s in snap["samples"] if s.startswith("spinny;")]
        assert spinny, snap["samples"]
        # Root-first fold: the thread entry point precedes the leaf.
        stack = spinny[0].split(";")
        assert any("spin_until" in part for part in stack)

    def test_background_thread_samples_and_stops(self):
        profiler = SamplingProfiler(interval=0.005)
        profiler.start()
        assert profiler.running
        time.sleep(0.1)
        profiler.stop()
        assert not profiler.running
        total = profiler.snapshot()["total"]
        assert total > 0
        time.sleep(0.05)
        assert profiler.snapshot()["total"] == total  # really stopped

    def test_start_is_idempotent(self):
        profiler = SamplingProfiler(interval=0.005)
        profiler.start()
        first = profiler._thread
        profiler.start()
        assert profiler._thread is first
        profiler.stop()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_max_stacks_overflow_buckets_into_other(self):
        profiler = SamplingProfiler(interval=0.01, max_stacks=1)
        stop = threading.Event()
        worker = threading.Thread(target=spin_until, args=(stop,))
        worker.start()
        try:
            for _ in range(4):
                profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        samples = profiler.snapshot()["samples"]
        assert len(samples) <= 2  # one real stack + (other)


class TestDiffMergeRender:
    def test_diff_is_the_window_between_snapshots(self):
        before = {"samples": {"a;b": 3, "a;c": 1}, "total": 4, "at": 10.0,
                  "interval": 0.02}
        after = {"samples": {"a;b": 8, "a;c": 1, "a;d": 2}, "total": 11,
                 "at": 12.0, "interval": 0.02}
        window = diff_profiles(before, after)
        assert window["samples"] == {"a;b": 5, "a;d": 2}
        assert window["total"] == 7
        assert window["seconds"] == pytest.approx(2.0)

    def test_merge_sums_across_workers(self):
        merged = merge_profiles(
            [
                {"samples": {"a;b": 2}, "total": 2, "interval": 0.02},
                None,  # a worker with profiling off
                {"samples": {"a;b": 1, "x;y": 4}, "total": 5,
                 "interval": 0.02},
            ]
        )
        assert merged["samples"] == {"a;b": 3, "x;y": 4}
        assert merged["total"] == 7

    def test_render_collapsed_hottest_first(self):
        text = render_collapsed(
            {"samples": {"cold;stack": 1, "hot;stack": 9, "warm;stack": 5}}
        )
        assert text.splitlines() == [
            "hot;stack 9",
            "warm;stack 5",
            "cold;stack 1",
        ]
        # flamegraph.pl format: everything before the last space is the
        # stack, the last token is the count.
        for line in text.splitlines():
            assert line.rsplit(" ", 1)[1].isdigit()

    def test_snapshot_is_json_safe(self):
        import json

        profiler = SamplingProfiler(interval=0.01)
        profiler.sample_once()
        json.dumps(profiler.snapshot())
