"""Experiment harness (S16): one entry point per paper table/figure.

Run from the command line::

    python -m repro.experiments --list
    python -m repro.experiments fig5 fig6b
    python -m repro.experiments all
"""

from repro.experiments.ablations import (
    run_ablation_activation,
    run_ablation_bounds,
    run_ablation_dmax,
)
from repro.experiments.common import Report, build_bench, repro_scale
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.experiments.figure4 import build_figure4_engine, run_figure4
from repro.experiments.memory import run_memory, run_prestige
from repro.experiments.recall_precision import run_recall_precision

#: Experiment id -> callable returning a Report (see DESIGN.md Section 4).
REGISTRY = {
    "fig4": run_figure4,
    "fig5": run_fig5,
    "fig6a": run_fig6a,
    "fig6b": run_fig6b,
    "fig6c": run_fig6c,
    "rp": run_recall_precision,
    "mem": run_memory,
    "prestige": run_prestige,
    "abl-activation": run_ablation_activation,
    "abl-dmax": run_ablation_dmax,
    "abl-bounds": run_ablation_bounds,
}

__all__ = [
    "REGISTRY",
    "Report",
    "build_bench",
    "repro_scale",
    "build_figure4_engine",
    "run_figure4",
    "run_fig5",
    "run_fig6a",
    "run_fig6b",
    "run_fig6c",
    "run_recall_precision",
    "run_memory",
    "run_prestige",
    "run_ablation_activation",
    "run_ablation_dmax",
    "run_ablation_bounds",
]
