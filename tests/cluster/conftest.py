"""Cluster-tier fixtures: toy snapshots and a shared two-worker fleet.

Process spawns are the expensive part of these tests (each worker
re-imports numpy), so the happy-path tests share one session-scoped
:class:`~repro.cluster.ShardedQueryService`; tests that kill workers or
exercise shutdown build their own throwaway pools.
"""

from __future__ import annotations

import pytest

from repro.cluster import ShardedQueryService
from repro.core.engine import KeywordSearchEngine
from repro.service.snapshot import save_engine

from tests.conftest import make_toy_db


@pytest.fixture(scope="session")
def toy_engine_session() -> KeywordSearchEngine:
    return KeywordSearchEngine.from_database(make_toy_db())


@pytest.fixture(scope="session")
def toy_snapshot(tmp_path_factory, toy_engine_session):
    path = tmp_path_factory.mktemp("cluster") / "toy.snap"
    return save_engine(path, toy_engine_session)


@pytest.fixture(scope="session")
def sharded(toy_snapshot):
    """A two-worker fleet serving two datasets (both the toy snapshot:
    shape is what matters, and loads are milliseconds)."""
    service = ShardedQueryService(
        {"alpha": toy_snapshot, "beta": toy_snapshot},
        num_workers=2,
        health_interval=0.2,
    )
    service.warmup()
    yield service
    service.close()
