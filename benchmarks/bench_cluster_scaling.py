"""Cluster scaling: batch QPS vs worker count, threads vs processes.

The same uncached mixed-query workload pushed through

* a thread-pool :class:`repro.service.QueryService` (``search_many``
  with ``max_workers=w``) — pure-Python search holds the GIL, so adding
  threads buys overlap, not cores; and
* a :class:`repro.cluster.ShardedQueryService` with ``w`` snapshot-
  warmed worker processes, the dataset replicated across all of them so
  routing fans queries out — CPU time actually divides across cores.

One JSON line per configuration (``{"mode": ..., "workers": ...,
"seconds": ..., "qps": ...}``) so fleet dashboards can ingest the
results, plus the usual rendered table.

Shape assertions: every response ok and process-tier results equal to
sequential search.  The scaling assertion (sharded >= 1.5x threads at 4
workers) only applies when the machine actually has >= 4 cores —
process pools cannot beat the GIL on a single-core box, and the bench
stays honest about that.

Env knobs: ``BENCH_CLUSTER_WORKERS`` (default ``1,2,4,8``) bounds the
sweep — CI smoke uses ``1,2``; ``REPRO_SCALE`` scales the dataset.

Run directly (``python benchmarks/bench_cluster_scaling.py``) or under
pytest-benchmark.
"""

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.cluster import ShardedQueryService
from repro.experiments.common import Report, build_bench, fmt
from repro.service import QueryRequest, QueryService
from repro.service.snapshot import save_engine

from conftest import as_float, cell, emit_json, run_report

NUM_REQUESTS = 48
SEED_TERMS = 8


def _worker_counts() -> list[int]:
    raw = os.environ.get("BENCH_CLUSTER_WORKERS", "1,2,4,8")
    return [int(part) for part in raw.split(",") if part.strip()]


def _mixed_queries(engine) -> list[str]:
    mids = [
        term
        for term, freq in engine.index.terms_by_frequency()
        if 5 <= freq <= 60
    ]
    pairs = min(SEED_TERMS, len(mids) // 2)
    assert pairs > 0, (
        f"dataset too small: only {len(mids)} mid-frequency terms; "
        f"raise REPRO_SCALE"
    )
    return [f"{mids[i]} {mids[i + pairs]}" for i in range(pairs)]


def _requests(stream: list[str]) -> list[QueryRequest]:
    # Uncached: this bench measures search throughput, not cache reads.
    return [QueryRequest("dblp", query, k=5, use_cache=False) for query in stream]


def run_scaling() -> Report:
    bench = build_bench("dblp", 0.4)
    queries = _mixed_queries(bench.engine)
    stream = [queries[i % len(queries)] for i in range(NUM_REQUESTS)]
    workers = _worker_counts()

    baseline = [
        bench.engine.search(query, k=5, algorithm="bidirectional")
        for query in stream
    ]

    report = Report(
        experiment="cluster-scaling",
        title=(
            f"{NUM_REQUESTS} uncached mixed queries, threads vs. processes "
            f"(synthetic DBLP, k=5, {os.cpu_count()} cores)"
        ),
        headers=["mode", "workers", "seconds", "QPS", "vs 1 thread"],
    )
    qps: dict[tuple[str, int], float] = {}

    def record(mode: str, count: int, seconds: float) -> None:
        qps[(mode, count)] = NUM_REQUESTS / seconds
        emit_json(
            {
                "mode": mode,
                "workers": count,
                "seconds": round(seconds, 4),
                "qps": round(NUM_REQUESTS / seconds, 2),
            }
        )

    for count in workers:
        with QueryService(max_workers=count) as service:
            service.register_engine("dblp", bench.engine)
            start = time.perf_counter()
            responses = service.search_many(_requests(stream))
            seconds = time.perf_counter() - start
        assert all(response.ok for response in responses)
        record("threads", count, seconds)

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = save_engine(Path(tmp) / "dblp.snap", bench.engine)
        for count in workers:
            with ShardedQueryService(
                {"dblp": snapshot},
                num_workers=count,
                default_replicas=count,
            ) as service:
                service.warmup()  # spawn + disk load excluded from QPS
                start = time.perf_counter()
                responses = service.search_many(_requests(stream))
                seconds = time.perf_counter() - start
            assert all(response.ok for response in responses)
            for response, expected in zip(responses, baseline):
                assert response.result.scores() == expected.scores()
            record("processes", count, seconds)

    base = qps[("threads", workers[0])]
    for mode in ("threads", "processes"):
        for count in workers:
            value = qps[(mode, count)]
            report.rows.append(
                [
                    mode,
                    str(count),
                    fmt(NUM_REQUESTS / value, 3),
                    fmt(value),
                    fmt(value / base, 2),
                ]
            )
    report.notes.append(
        "threads overlap I/O but serialize search on the GIL; processes "
        "divide CPU across cores (spawn + snapshot warmup excluded)"
    )
    cores = os.cpu_count() or 1
    if cores >= 4 and 4 in workers:
        ratio = qps[("processes", 4)] / qps[("threads", 4)]
        report.notes.append(f"4-worker process/thread QPS ratio: {ratio:.2f}x")
        assert ratio >= 1.5, (
            f"sharded tier should beat threads >=1.5x at 4 workers on "
            f"{cores} cores, got {ratio:.2f}x"
        )
    else:
        report.notes.append(
            f"only {cores} core(s): scaling assertion skipped (processes "
            f"cannot beat the GIL without cores to divide across)"
        )
    return report


def test_cluster_scaling(benchmark):
    report = run_report(benchmark, run_scaling)
    for row in range(len(report.rows)):
        assert as_float(cell(report, row, 3)) > 0


if __name__ == "__main__":
    print(run_scaling().render())
