"""Synthetic DBLP-shaped bibliographic database (substrate S14).

Shape mirrors the paper's DBLP graph (Sections 1, 2.1, 5): authors,
papers, a small set of conference hub nodes with very large fan-in,
``writes`` link tuples (nodes of their own, as in paper Figure 4) and
preferential-attachment citations so PageRank prestige is informative.
Real DBLP (2M nodes / 9M edges) is substituted by this generator scaled
down — see DESIGN.md Section 3 for why the shape, not the size, drives
the paper's measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.names import NamePool
from repro.datasets.vocab import make_vocabulary
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, Schema, Table

__all__ = ["DblpConfig", "DBLP_SCHEMA", "make_dblp"]

CONFERENCE_NAMES: tuple[str, ...] = (
    "VLDB", "SIGMOD", "ICDE", "KDD", "WWW", "SOSP", "OSDI", "NSDI",
    "STOC", "FOCS", "PODS", "EDBT",
)

DBLP_SCHEMA = Schema(
    tables=(
        Table("author", ("id", "name"), text_columns=("name",)),
        Table("conference", ("id", "name"), text_columns=("name",)),
        Table("paper", ("id", "title", "year", "conf_id"), text_columns=("title",)),
        Table("writes", ("id", "author_id", "paper_id")),
        Table("cites", ("id", "citing_id", "cited_id")),
    ),
    foreign_keys=(
        ForeignKey("paper", "conf_id", "conference"),
        ForeignKey("writes", "author_id", "author"),
        ForeignKey("writes", "paper_id", "paper"),
        ForeignKey("cites", "citing_id", "paper"),
        ForeignKey("cites", "cited_id", "paper"),
    ),
)


@dataclass(frozen=True)
class DblpConfig:
    """Size and shape knobs; defaults suit unit tests, scale up for benches."""

    n_authors: int = 300
    n_papers: int = 600
    n_conferences: int = 8
    max_authors_per_paper: int = 3
    mean_citations: float = 2.0
    vocabulary_size: int = 400
    title_words: tuple[int, int] = (3, 7)
    seed: int = 7

    def scaled(self, factor: float) -> "DblpConfig":
        """Multiply entity counts by ``factor`` (>= tiny floor)."""
        return DblpConfig(
            n_authors=max(10, int(self.n_authors * factor)),
            n_papers=max(20, int(self.n_papers * factor)),
            n_conferences=max(3, int(self.n_conferences * min(factor, 2.0))),
            max_authors_per_paper=self.max_authors_per_paper,
            mean_citations=self.mean_citations,
            vocabulary_size=max(50, int(self.vocabulary_size * factor)),
            title_words=self.title_words,
            seed=self.seed,
        )


def make_dblp(config: DblpConfig = DblpConfig()) -> Database:
    """Generate a deterministic DBLP-like database for ``config``."""
    rng = random.Random(config.seed)
    vocab = make_vocabulary(config.vocabulary_size)
    names = NamePool()
    db = Database(DBLP_SCHEMA)

    for conf_id in range(1, config.n_conferences + 1):
        base = CONFERENCE_NAMES[(conf_id - 1) % len(CONFERENCE_NAMES)]
        series = (conf_id - 1) // len(CONFERENCE_NAMES)
        name = base if series == 0 else f"{base} {series + 1}"
        db.insert("conference", {"id": conf_id, "name": name})

    for author_id in range(1, config.n_authors + 1):
        db.insert("author", {"id": author_id, "name": names.person(rng)})

    # Prolific authors: preferential attachment over paper authorship,
    # giving the large-fan-in author nodes of the paper's "John" example.
    author_weight = [1] * (config.n_authors + 1)
    # Conference sizes are skewed, too: a couple of mega-conferences.
    conf_weights = [
        1.0 / (rank ** 0.8) for rank in range(1, config.n_conferences + 1)
    ]

    writes_id = 0
    for paper_id in range(1, config.n_papers + 1):
        conf_id = rng.choices(
            range(1, config.n_conferences + 1), weights=conf_weights
        )[0]
        db.insert(
            "paper",
            {
                "id": paper_id,
                "title": vocab.phrase(rng, *config.title_words),
                "year": rng.randint(1970, 2005),
                "conf_id": conf_id,
            },
        )
        n_authors = rng.randint(1, config.max_authors_per_paper)
        chosen: set[int] = set()
        for _ in range(n_authors):
            author_id = rng.choices(
                range(1, config.n_authors + 1),
                weights=author_weight[1:],
            )[0]
            if author_id in chosen:
                continue
            chosen.add(author_id)
            author_weight[author_id] += 2
            writes_id += 1
            db.insert(
                "writes",
                {"id": writes_id, "author_id": author_id, "paper_id": paper_id},
            )

    # Citations: papers cite earlier papers, preferentially the already
    # well-cited (rich-get-richer), so prestige separates papers.
    cite_weight = [1] * (config.n_papers + 1)
    cites_id = 0
    for paper_id in range(2, config.n_papers + 1):
        n_cites = min(paper_id - 1, rng.randint(0, int(2 * config.mean_citations)))
        cited_chosen: set[int] = set()
        for _ in range(n_cites):
            cited = rng.choices(
                range(1, paper_id), weights=cite_weight[1:paper_id]
            )[0]
            if cited in cited_chosen:
                continue
            cited_chosen.add(cited)
            cite_weight[cited] += 1
            cites_id += 1
            db.insert(
                "cites",
                {"id": cites_id, "citing_id": paper_id, "cited_id": cited},
            )
    return db
