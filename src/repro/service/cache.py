"""Thread-safe LRU + TTL result cache for the query service.

Keys are canonicalized ``(dataset, keywords, algorithm, params)`` tuples
(:func:`canonical_cache_key`), so the same logical query — whatever the
whitespace, quoting or ``k`` override it arrived with — hits the same
entry.  Values are whatever the service stores (``SearchResult`` today);
the cache never copies them, so hits share answer objects with every
earlier caller.  That is safe because results are produced once and
treated as immutable by the service layer, the same contract the frozen
graph and index already rely on.

Eviction is twofold:

* **LRU**: when ``capacity`` entries exist, inserting a new key evicts
  the least recently *used* (read or written) entry.
* **TTL**: entries older than ``ttl`` seconds are treated as absent and
  dropped on access (lazy expiry; :meth:`ResultCache.purge_expired`
  sweeps eagerly).

The clock is injectable so tests exercise TTL deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Sequence, Union

from repro.core.engine import parse_query
from repro.core.params import SearchParams

__all__ = ["ResultCache", "canonical_cache_key"]

_MISSING = object()


def canonical_cache_key(
    dataset: str,
    query: Union[str, Sequence[str]],
    algorithm: str,
    params: SearchParams,
    *,
    version: int = 0,
) -> tuple:
    """Canonical, hashable identity of one logical query.

    ``query`` is reduced to its parsed keyword tuple, so ``'gray
    transaction'``, ``'  gray   transaction '`` and ``('gray',
    'transaction')`` collide (keyword *order* is preserved: it fixes the
    answer-path order in results, so reordered queries are distinct).
    ``params`` must already include any ``k`` override — the service
    applies ``with_(max_results=k)`` before keying.

    ``version`` is the dataset's epoch at lookup time (see
    :meth:`~repro.service.QueryService.dataset_version`): a live
    mutation commit bumps it, so every entry cached against the prior
    epoch becomes unreachable — commits invalidate stale results for
    free, with no purge required for correctness.
    """
    keywords = parse_query(query)
    return (dataset, keywords, algorithm, params, version)


class ResultCache:
    """Bounded mapping with LRU eviction and per-entry TTL expiry."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl!r}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, tuple[Any, float]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, refreshing its recency; ``default`` when
        absent or expired."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self._misses += 1
                return default
            value, stored_at = entry
            if self._expired(stored_at):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry on overflow."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return False
            if self._expired(entry[1]):
                del self._entries[key]
                self._expirations += 1
                return False
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        """Current keys, least recently used first (expired included
        until touched or purged)."""
        with self._lock:
            return list(self._entries)

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns
        how many.  The service uses this to invalidate one dataset's
        entries when its engine is replaced."""
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def purge_expired(self) -> int:
        """Eagerly drop every expired entry; returns how many."""
        with self._lock:
            if self.ttl is None:
                return 0
            stale = [
                key
                for key, (_, stored_at) in self._entries.items()
                if self._expired(stored_at)
            ]
            for key in stale:
                del self._entries[key]
            self._expirations += len(stale)
            return len(stale)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters as a plain dict (merged into the service metrics)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "ttl": self.ttl,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
                "evictions": self._evictions,
                "expirations": self._expirations,
            }

    # ------------------------------------------------------------------
    def _expired(self, stored_at: float) -> bool:
        return self.ttl is not None and self._clock() - stored_at >= self.ttl

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(size={len(self)}, capacity={self.capacity}, "
            f"ttl={self.ttl})"
        )
