"""SloEngine: window math, multi-window firing, gauges, events."""

import pytest

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import (
    SloEngine,
    SloObjective,
    burn_rate,
    default_objectives,
    histogram_bad_fraction,
)


class FakeSource:
    """A hand-rolled families export the engine snapshots from."""

    def __init__(self):
        self.requests = 0.0
        self.errors: dict[str, float] = {}
        self.workers = None
        self.alive = None

    def __call__(self):
        families = {
            "repro_fleet_requests_total": {
                "type": "counter",
                "samples": [{"labels": {"dataset": "toy"}, "value": self.requests}],
            },
            "repro_fleet_failures_total": {
                "type": "counter",
                "samples": [
                    {"labels": {"dataset": "toy", "type": kind}, "value": count}
                    for kind, count in self.errors.items()
                ],
            },
            "repro_fleet_request_latency_seconds": {
                "type": "histogram",
                "samples": [],
            },
        }
        if self.workers is not None:
            families["repro_cluster_workers"] = {
                "type": "gauge",
                "samples": [{"labels": {}, "value": self.workers}],
            }
            families["repro_cluster_workers_alive"] = {
                "type": "gauge",
                "samples": [{"labels": {}, "value": self.alive}],
            }
        return families


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_engine(objectives, source, **kwargs):
    clock = Clock()
    engine = SloEngine(objectives, source=source, clock=clock, **kwargs)
    return engine, clock


class TestPureMath:
    def test_burn_rate(self):
        assert burn_rate(1, 100, 0.01) == pytest.approx(1.0)
        assert burn_rate(6, 100, 0.01) == pytest.approx(6.0)
        assert burn_rate(0, 0, 0.01) == 0.0

    def test_histogram_bad_fraction_uses_bucket_at_threshold(self):
        buckets = {"0.1": 50.0, "1.0": 90.0, "+Inf": 100.0}
        assert histogram_bad_fraction(buckets, 100.0, 1.0) == pytest.approx(0.1)
        # Threshold between bounds: conservative (over-counts badness).
        assert histogram_bad_fraction(buckets, 100.0, 0.5) == pytest.approx(0.5)
        assert histogram_bad_fraction({}, 0.0, 1.0) == 0.0

    def test_objective_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SloObjective(name="x", kind="throughput")
        with pytest.raises(ValueError, match="budget"):
            SloObjective(name="x", kind="latency", budget=0.0)
        with pytest.raises(ValueError, match="windows"):
            SloObjective(
                name="x", kind="latency", fast_window=10, slow_window=5
            )

    def test_default_objectives_cover_the_three_kinds(self):
        kinds = {o.kind for o in default_objectives()}
        assert kinds == {"availability", "error_rate", "latency"}


class TestErrorRateFiring:
    def objective(self):
        return SloObjective(
            name="errors",
            kind="error_rate",
            budget=0.1,
            fast_window=10.0,
            slow_window=30.0,
            burn_threshold=2.0,
        )

    def test_fires_only_when_both_windows_burn(self):
        source = FakeSource()
        engine, clock = make_engine([self.objective()], source)
        # Healthy traffic for a while.
        for _ in range(6):
            clock.now += 5.0
            source.requests += 10
            (status,) = engine.evaluate()
            assert not status["firing"]
        # Sudden 100% error rate: burn = (1.0 / 0.1) = 10x in the fast
        # window; the slow window still contains the healthy traffic
        # but 10 errors / 70 requests / 0.1 = 1.43x < 2x... push more.
        clock.now += 5.0
        source.requests += 10
        source.errors["SearchError"] = 10.0
        (status,) = engine.evaluate()
        fast_burn = status["windows"]["fast"]["burn_rate"]
        assert fast_burn >= 2.0
        # Keep erroring until the slow window crosses too.
        while not status["firing"]:
            clock.now += 5.0
            source.requests += 10
            source.errors["SearchError"] += 10.0
            (status,) = engine.evaluate()
            assert clock.now < 300, "alert never fired"
        assert engine.firing()["errors"] is True
        assert status["firing_since"] == clock.now

    def test_clears_when_fast_window_recovers(self):
        source = FakeSource()
        engine, clock = make_engine([self.objective()], source)
        engine.evaluate()  # baseline snapshot at t=0, no traffic
        clock.now = 1.0
        source.requests = 10
        source.errors["SearchError"] = 10.0
        (status,) = engine.evaluate()
        assert status["firing"]  # 100% errors in both windows
        # Healthy traffic slides the fast window clean.
        for _ in range(5):
            clock.now += 5.0
            source.requests += 100
            (status,) = engine.evaluate()
        assert not status["firing"]
        assert engine.firing()["errors"] is False

    def test_breach_and_clear_events(self):
        events = EventLog(16)
        source = FakeSource()
        engine, clock = make_engine(
            [self.objective()], source, event_log=events
        )
        engine.evaluate()  # baseline snapshot at t=0
        clock.now = 1.0
        source.requests = 10
        source.errors["SearchError"] = 10.0
        engine.evaluate()
        for _ in range(5):
            clock.now += 5.0
            source.requests += 100
            engine.evaluate()
        kinds = [e["kind"] for e in events.events()]
        assert kinds == ["slo_breach", "slo_clear"]
        breach = events.events()[0]
        assert breach["severity"] == "error"
        assert breach["extra"]["objective"] == "errors"

    def test_gauges_exported(self):
        registry = MetricsRegistry()
        source = FakeSource()
        engine, clock = make_engine(
            [self.objective()], source, registry=registry
        )
        engine.evaluate()  # baseline snapshot at t=0
        clock.now = 1.0
        source.requests = 10
        source.errors["SearchError"] = 10.0
        engine.evaluate()
        export = registry.export()
        burn = export["repro_slo_burn_rate"]["samples"]
        assert {s["labels"]["window"] for s in burn} == {"fast", "slow"}
        firing = export["repro_slo_alert_firing"]["samples"]
        assert firing[0]["value"] == 1.0
        alerts = export["repro_slo_alerts_total"]["samples"]
        assert alerts[0]["value"] == 1.0


class TestAvailability:
    def test_liveness_based_when_worker_gauges_present(self):
        objective = SloObjective(
            name="avail",
            kind="availability",
            budget=0.05,
            fast_window=10.0,
            slow_window=20.0,
            burn_threshold=2.0,
        )
        source = FakeSource()
        source.workers, source.alive = 2, 2
        engine, clock = make_engine([objective], source)
        clock.now = 1.0
        (status,) = engine.evaluate()
        assert not status["firing"]
        # One of two workers dies: alive fraction 0.5, bad fraction 0.5,
        # burn 0.5/0.05 = 10x in both windows.
        source.alive = 1
        clock.now += 1.0
        (status,) = engine.evaluate()
        assert status["firing"]
        # Worker comes back; healthy snapshots slide the fast window.
        source.alive = 2
        for _ in range(30):
            clock.now += 1.0
            (status,) = engine.evaluate()
        assert not status["firing"]

    def test_error_type_fallback_without_worker_gauges(self):
        objective = SloObjective(
            name="avail",
            kind="availability",
            budget=0.1,
            fast_window=10.0,
            slow_window=20.0,
            burn_threshold=2.0,
        )
        source = FakeSource()  # no worker gauges -> fallback
        engine, clock = make_engine([objective], source)
        engine.evaluate()  # baseline snapshot at t=0
        clock.now = 1.0
        source.requests = 10
        source.errors["WorkerCrashedError"] = 5.0
        source.errors["KeywordNotFoundError"] = 5.0  # must NOT count
        (status,) = engine.evaluate()
        fast = status["windows"]["fast"]
        assert fast["bad"] == pytest.approx(5.0)
        assert fast["bad_fraction"] == pytest.approx(0.5)


class TestLatency:
    def test_latency_objective_over_histogram(self):
        objective = SloObjective(
            name="p99",
            kind="latency",
            threshold=1.0,
            budget=0.1,
            fast_window=10.0,
            slow_window=20.0,
            burn_threshold=2.0,
        )

        class LatencySource:
            def __init__(self):
                self.buckets = {"1.0": 0.0, "+Inf": 0.0}
                self.count = 0.0

            def observe(self, n_fast, n_slow):
                self.buckets["1.0"] += n_fast
                self.buckets["+Inf"] += n_fast + n_slow
                self.count += n_fast + n_slow

            def __call__(self):
                return {
                    "repro_fleet_request_latency_seconds": {
                        "type": "histogram",
                        "samples": [
                            {
                                "labels": {"dataset": "toy"},
                                "buckets": dict(self.buckets),
                                "count": self.count,
                            }
                        ],
                    }
                }

        source = LatencySource()
        engine, clock = make_engine([objective], source)
        engine.evaluate()  # baseline snapshot at t=0
        clock.now = 1.0
        source.observe(n_fast=99, n_slow=1)  # 1% slow: on budget
        (status,) = engine.evaluate()
        assert status["windows"]["fast"]["burn_rate"] == pytest.approx(0.1)
        assert not status["firing"]
        clock.now += 1.0
        source.observe(n_fast=0, n_slow=50)  # everything slow now
        (status,) = engine.evaluate()
        assert status["windows"]["fast"]["burn_rate"] > 2.0
        assert status["firing"]
