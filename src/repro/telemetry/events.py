"""Structured operational event log.

A bounded, thread-safe ring of *operational* events — worker crashes,
WAL corruption repairs, snapshot reloads, SLO breaches — the durable
"what happened" record that metrics (cumulative counters) and traces
(per-request) cannot answer on their own.

Every event is a JSON-safe dict with a **monotonically increasing
sequence number** assigned under the log's lock, so consumers can poll
``events(since=seq)`` and never miss or re-read an entry that is still
in the ring.  Worker processes keep their own local :class:`EventLog`;
the supervisor pulls their deltas over the existing pipe wire format
and :meth:`EventLog.ingest`-s them into its authoritative log, where
they are re-sequenced into the single fleet-wide ordering (the
original worker-side sequence survives as ``remote_seq``).

Severity levels mirror logging practice: ``debug`` < ``info`` <
``warning`` < ``error`` < ``critical``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterable

__all__ = ["EventLog", "SEVERITIES", "merge_events"]

#: Recognised severities, mildest first.  ``emit`` rejects others so a
#: typo cannot silently create an un-filterable severity class.
SEVERITIES = ("debug", "info", "warning", "error", "critical")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


class EventLog:
    """Thread-safe ring of structured operational events.

    ``capacity`` bounds memory: the ring keeps the most recent events
    and silently drops the oldest.  ``emitted`` (total ever emitted)
    and ``dropped`` (total aged out of the ring) stay exact so a
    consumer can detect that it missed history.
    """

    def __init__(self, capacity: int = 512, *, clock: Callable[[], float] = time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._emitted = 0

    # ------------------------------------------------------------------
    # Producing events

    def emit(
        self,
        kind: str,
        message: str,
        *,
        severity: str = "info",
        dataset: str | None = None,
        trace_id: str | None = None,
        source: str | None = None,
        **extra: Any,
    ) -> dict[str, Any]:
        """Append one event and return it (with its assigned ``seq``).

        ``kind`` is a stable machine-matchable name (``worker_crash``,
        ``wal_replay``, ``slo_breach``…); ``message`` is the human
        sentence.  ``extra`` keyword arguments land under the event's
        ``"extra"`` key and must be JSON-safe — they ride the worker
        pipe unchanged.
        """
        if severity not in _SEVERITY_RANK:
            raise ValueError(
                f"unknown severity {severity!r}; expected one of {SEVERITIES}"
            )
        event: dict[str, Any] = {
            "ts": self._clock(),
            "kind": kind,
            "severity": severity,
            "message": message,
            "dataset": dataset,
            "trace_id": trace_id,
            "source": source,
            "extra": dict(extra),
        }
        with self._lock:
            self._seq += 1
            self._emitted += 1
            event["seq"] = self._seq
            self._ring.append(event)
        return event

    def ingest(
        self, event: dict[str, Any], *, source: str | None = None
    ) -> dict[str, Any]:
        """Re-sequence a foreign event (e.g. pulled from a worker) into
        this log.

        The event's own timestamp, kind, severity, and payload are
        preserved; its original sequence number is kept as
        ``remote_seq`` and a fresh local ``seq`` is assigned so the
        authoritative log stays strictly monotone.  ``source``
        overrides the event's source when given (how the supervisor
        stamps ``worker-3`` on pulled events).
        """
        copied = dict(event)
        copied["remote_seq"] = copied.pop("seq", None)
        if source is not None:
            copied["source"] = source
        with self._lock:
            self._seq += 1
            self._emitted += 1
            copied["seq"] = self._seq
            self._ring.append(copied)
        return copied

    # ------------------------------------------------------------------
    # Consuming events

    def events(
        self,
        since: int = 0,
        *,
        limit: int | None = None,
        min_severity: str | None = None,
    ) -> list[dict[str, Any]]:
        """Events with ``seq > since``, oldest first.

        ``limit`` caps the result (keeping the *newest* entries);
        ``min_severity`` drops events milder than the given level.
        Returned dicts are copies — mutating them cannot corrupt the
        ring.
        """
        floor = -1
        if min_severity is not None:
            if min_severity not in _SEVERITY_RANK:
                raise ValueError(
                    f"unknown severity {min_severity!r}; "
                    f"expected one of {SEVERITIES}"
                )
            floor = _SEVERITY_RANK[min_severity]
        with self._lock:
            selected = [
                dict(event)
                for event in self._ring
                if event["seq"] > since
                and _SEVERITY_RANK[event["severity"]] >= floor
            ]
        if limit is not None and len(selected) > limit:
            selected = selected[-limit:]
        return selected

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "last_seq": self._seq,
                "emitted": self._emitted,
                "size": len(self._ring),
                "capacity": self.capacity,
                "dropped": self._emitted - len(self._ring),
            }


def merge_events(
    parts: Iterable[Iterable[dict[str, Any]]], *, limit: int | None = None
) -> list[dict[str, Any]]:
    """Combine event lists from several logs into one timeline.

    Events sort by wall-clock timestamp (stable, so same-timestamp
    events keep their per-source order); ``limit`` keeps the newest.
    Used for ad-hoc views over logs that were *not* ingested into one
    authoritative ring — the supervisor's normal path is
    :meth:`EventLog.ingest`, which keeps one sequence space instead.
    """
    merged = [dict(event) for part in parts for event in part]
    merged.sort(key=lambda event: event.get("ts") or 0.0)
    if limit is not None and len(merged) > limit:
        merged = merged[-limit:]
    return merged
