"""Durable mutation log (WAL) with crash-recovery replay.

The durability tier under :mod:`repro.live`: every committed mutation
batch is appended — length-prefixed, crc32-checksummed, strictly
sequenced — to a per-dataset segmented log on disk, and replaying the
log onto the base snapshot reconstructs the live dataset bit-for-bit.
A ``kill -9``'d replica therefore recovers to exactly the last durable
epoch instead of silently serving its stale snapshot.

* :class:`MutationLog` — the log itself: append/replay/rotate/truncate
  with configurable sync policy (``"commit"`` / ``"batched"`` /
  ``"off"``).
* :class:`WalRecord` — one replayable record (sequence number ==
  dataset epoch version, wire mutation dicts).
* :class:`WalCorruptionWarning` — the structured warning a torn or
  corrupt tail surfaces; recovery stops cleanly at the last valid
  record, never crashes, never skips valid data.
* :func:`default_wal_path` — the ``<snapshot>.wal`` sibling convention
  shared by ``QueryService.attach_wal`` and the snapshot CLI.

Wiring lives in the owning tiers: ``MutableDataset(journal=...)`` +
``MutableDataset.replay`` (:mod:`repro.live`),
``QueryService.attach_wal`` (thread tier),
``ShardedQueryService(wal_dir=...)`` append-before-broadcast plus
worker startup replay (cluster tier).
"""

from repro.wal.log import (
    SYNC_POLICIES,
    WAL_FORMAT,
    WAL_VERSION,
    MutationLog,
    WalCorruptionWarning,
    WalRecord,
    default_wal_path,
)

__all__ = [
    "SYNC_POLICIES",
    "WAL_FORMAT",
    "WAL_VERSION",
    "MutationLog",
    "WalCorruptionWarning",
    "WalRecord",
    "default_wal_path",
]
