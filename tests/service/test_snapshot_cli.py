"""Snapshot CLI: ``python -m repro.service.snapshot info|save``."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.snapshot import load_engine, main, save_engine, snapshot_info


@pytest.fixture()
def toy_snapshot_path(tmp_path, toy_engine):
    return save_engine(tmp_path / "toy.snap", toy_engine)


def test_info_prints_header_fields(toy_snapshot_path, capsys):
    assert main(["info", str(toy_snapshot_path)]) == 0
    out = capsys.readouterr().out
    info = snapshot_info(toy_snapshot_path)
    for key, value in info.items():
        assert f"{key} = {value}" in out
    assert "version = 1" in out


def test_info_without_sibling_wal_stays_quiet(toy_snapshot_path, capsys):
    assert main(["info", str(toy_snapshot_path)]) == 0
    assert "wal_" not in capsys.readouterr().out


def test_info_reports_sibling_wal_position(toy_snapshot_path, capsys):
    """Operators must see at a glance whether a sibling WAL holds
    commits the snapshot does not."""
    from repro.wal import MutationLog, default_wal_path

    with MutationLog(default_wal_path(toy_snapshot_path)) as log:
        for i in range(3):
            log.append([{"op": "add_node", "label": f"n{i}"}])
    assert main(["info", str(toy_snapshot_path)]) == 0
    out = capsys.readouterr().out
    assert f"wal_path = {default_wal_path(toy_snapshot_path)}" in out
    assert "wal_seq = 3" in out
    # snapshot is at dataset_version 0: all three commits unsnapshotted
    assert "wal_unsnapshotted_commits = 3" in out


def test_info_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["info", str(tmp_path / "missing.snap")]) == 1
    assert "error:" in capsys.readouterr().out


def test_save_builds_and_writes_loadable_snapshot(tmp_path, capsys):
    target = tmp_path / "dblp.snap"
    assert main(["save", "dblp", str(target), "--scale", "0.25"]) == 0
    assert "wrote" in capsys.readouterr().out
    engine = load_engine(target)
    assert engine.graph.num_nodes > 0
    result = engine.search(engine.index.terms_by_frequency()[0][0], k=1)
    assert result is not None


def test_save_unknown_dataset_exits(tmp_path):
    with pytest.raises(SystemExit, match="unknown dataset"):
        main(["save", "nope", str(tmp_path / "x.snap")])


def test_module_invocation_via_dash_m(toy_snapshot_path):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.service.snapshot", "info", str(toy_snapshot_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "format = repro-engine-snapshot" in completed.stdout
