"""Workload measurement: the paper's per-query metrics.

Section 5.2: "For all the performance metrics, we use the last relevant
result (or the tenth relevant result in case there are more than ten
relevant results) as the point of measurement", with both the *output*
instant and the *generation* instant of that answer recorded, plus the
nodes explored/touched at those instants.  Section 5.7 adds
recall/precision of the output ranking against the relevant set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.answer import SearchResult, Signature

__all__ = [
    "MeasurementPoint",
    "measure_at_last_relevant",
    "recall_precision_curve",
    "precision_at_full_recall",
    "recall",
    "connection_key",
    "connection_recall",
    "coverage_curve",
    "precision_at_full_coverage",
]


def connection_key(tree) -> tuple:
    """Tie-invariant identity of an answer: root plus rounded sorted
    per-keyword path lengths.

    On graphs with uniform schema weights many equally-short paths tie
    (e.g. several papers at the same distance behind one conference
    hub); the single-iterator algorithms keep one arbitrary tie variant
    per root (paper Section 4.6: the answer set may change "slightly"),
    so exact-tree matching undercounts.  Two answers with the same root
    and the same per-keyword path lengths are interchangeable for
    relevance purposes.
    """
    return (tree.root, tuple(sorted(round(d, 6) for d in tree.dists)))


def connection_recall(output_trees, relevant_trees) -> float:
    """Fraction of relevant *connections* found (tie-invariant).

    An output answer covers a relevant tree when they share the exact
    skeleton (signature) or the :func:`connection_key`.
    """
    if not relevant_trees:
        raise ValueError("relevant set must be non-empty")
    found_signatures = {tree.signature() for tree in output_trees}
    found_keys = {connection_key(tree) for tree in output_trees}
    covered = sum(
        1
        for tree in relevant_trees
        if tree.signature() in found_signatures
        or connection_key(tree) in found_keys
    )
    return covered / len(relevant_trees)


def coverage_curve(output_trees, relevant_trees) -> list[tuple[float, float]]:
    """Tie-invariant (recall, precision) after each output answer.

    An output answer counts as relevant when it covers any relevant
    tree (by signature or connection key); recall counts distinct
    relevant trees covered so far.
    """
    if not relevant_trees:
        raise ValueError("relevant set must be non-empty")
    by_signature: dict = {}
    by_key: dict = {}
    for index, tree in enumerate(relevant_trees):
        by_signature.setdefault(tree.signature(), set()).add(index)
        by_key.setdefault(connection_key(tree), set()).add(index)
    covered: set[int] = set()
    relevant_outputs = 0
    curve: list[tuple[float, float]] = []
    for position, tree in enumerate(output_trees, start=1):
        matches = by_signature.get(tree.signature(), set()) | by_key.get(
            connection_key(tree), set()
        )
        if matches:
            relevant_outputs += 1
            covered |= matches
        curve.append(
            (len(covered) / len(relevant_trees), relevant_outputs / position)
        )
    return curve


def precision_at_full_coverage(output_trees, relevant_trees) -> Optional[float]:
    """Tie-invariant precision at the first full-recall prefix."""
    for recall_value, precision_value in coverage_curve(
        output_trees, relevant_trees
    ):
        if recall_value >= 1.0:
            return precision_value
    return None


@dataclass(frozen=True)
class MeasurementPoint:
    """Metrics at the paper's measurement point for one (query, algorithm)."""

    rank: int  # 1-based output rank of the measured answer
    relevant_found: int
    out_time: float
    gen_time: float
    out_pops: int
    gen_pops: int
    out_touched: int
    gen_touched: int
    total_time: float
    total_pops: int
    total_touched: int


def measure_at_last_relevant(
    result: SearchResult,
    relevant: set[Signature],
    *,
    nth: int = 10,
) -> Optional[MeasurementPoint]:
    """Locate the last (or ``nth``) relevant answer in output order and
    capture the paper's metrics there.

    Returns None when no relevant answer was output (the algorithm
    missed the ground truth entirely — callers should count those
    separately rather than average over them).
    """
    hits = [
        (position, answer)
        for position, answer in enumerate(result.answers)
        if answer.tree.signature() in relevant
    ]
    if not hits:
        return None
    measured = hits[: nth][-1]
    position, answer = measured
    stats = result.stats
    return MeasurementPoint(
        rank=position + 1,
        relevant_found=len(hits),
        out_time=answer.output_at,
        gen_time=answer.generated_at,
        out_pops=answer.output_pops,
        gen_pops=answer.generated_pops,
        out_touched=answer.output_touched,
        gen_touched=answer.generated_touched,
        total_time=stats.elapsed,
        total_pops=stats.nodes_explored,
        total_touched=stats.nodes_touched,
    )


def recall_precision_curve(
    output_signatures: Sequence[Signature],
    relevant: set[Signature],
) -> list[tuple[float, float]]:
    """(recall, precision) after each output answer, in output order."""
    if not relevant:
        raise ValueError("relevant set must be non-empty")
    curve: list[tuple[float, float]] = []
    found = 0
    for position, signature in enumerate(output_signatures, start=1):
        if signature in relevant:
            found += 1
        curve.append((found / len(relevant), found / position))
    return curve


def recall(
    output_signatures: Sequence[Signature], relevant: set[Signature]
) -> float:
    """Fraction of the relevant set present anywhere in the output."""
    if not relevant:
        raise ValueError("relevant set must be non-empty")
    found = sum(1 for s in set(output_signatures) if s in relevant)
    return found / len(relevant)


def precision_at_full_recall(
    output_signatures: Sequence[Signature], relevant: set[Signature]
) -> Optional[float]:
    """Precision at the output prefix that first reaches full recall.

    The paper reports "equally high precision at near full recall";
    returns None when full recall is never reached.
    """
    curve = recall_precision_curve(output_signatures, relevant)
    for recall_value, precision_value in curve:
        if recall_value >= 1.0:
            return precision_value
    return None
