"""Wire format: service dataclasses <-> plain JSON-safe dicts.

Two consumers need the service types flattened to primitives:

* the process-pool sharding tier (:mod:`repro.cluster`), whose contract
  is that nothing un-picklable crosses a process boundary — only
  snapshot paths and request/response-shaped dicts;
* the HTTP front-end (:mod:`repro.cluster.http`), which speaks JSON.

Every ``*_to_dict`` output contains only ``dict`` / ``list`` / ``str``
/ ``int`` / ``float`` / ``bool`` / ``None`` — ``json.dumps`` always
succeeds on it — and every ``*_from_dict`` validates its input and
raises ``ValueError`` on unknown or missing fields, so a malformed
request becomes a structured error response instead of a stack trace
deep inside a worker.

Lossiness is confined to :class:`~repro.service.QueryResponse.exception`
(a live exception object cannot cross the wire; ``error`` /
``error_type`` carry the information) and to
:class:`~repro.core.stats.SearchStats` timestamps (the reconstructed
stats preserve every counter and the elapsed time, re-anchored at zero).
"""

from __future__ import annotations

from dataclasses import asdict, fields
from typing import Optional

from repro.core.answer import AnswerTree, OutputAnswer, SearchResult
from repro.core.params import SearchParams
from repro.core.stats import COST_FIELDS, SearchStats
from repro.service.service import QueryRequest, QueryResponse

__all__ = [
    "params_to_dict",
    "params_from_dict",
    "request_to_dict",
    "request_from_dict",
    "result_to_dict",
    "result_from_dict",
    "response_to_dict",
    "response_from_dict",
    "error_response_dict",
]

_PARAM_FIELDS = frozenset(field.name for field in fields(SearchParams))
_REQUEST_FIELDS = frozenset(field.name for field in fields(QueryRequest))


def _require_mapping(obj, what: str) -> dict:
    if not isinstance(obj, dict):
        raise ValueError(f"{what} must be a JSON object, got {type(obj).__name__}")
    return obj


def _reject_unknown(data: dict, allowed: frozenset, what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(f"{what} has unknown fields: {', '.join(unknown)}")


# ----------------------------------------------------------------------
# SearchParams
# ----------------------------------------------------------------------
def params_to_dict(params: SearchParams) -> dict:
    return asdict(params)


def params_from_dict(data: dict) -> SearchParams:
    data = _require_mapping(data, "params")
    _reject_unknown(data, _PARAM_FIELDS, "params")
    return SearchParams(**data)


# ----------------------------------------------------------------------
# QueryRequest
# ----------------------------------------------------------------------
def request_to_dict(request: QueryRequest) -> dict:
    # No "deadline_ms" key: construction normalizes it into ``timeout``,
    # so the wire shape has exactly one deadline spelling.
    return {
        "dataset": request.dataset,
        "query": (
            request.query
            if isinstance(request.query, str)
            else list(request.query)
        ),
        "algorithm": request.algorithm,
        "k": request.k,
        "params": (
            params_to_dict(request.params) if request.params is not None else None
        ),
        "timeout": request.timeout,
        "use_cache": request.use_cache,
        "allow_partial": request.allow_partial,
        "explain": request.explain,
        "request_id": request.request_id,
        "trace_id": request.trace_id,
        "parent_span_id": request.parent_span_id,
    }


def _check_type(data: dict, field: str, types: tuple, what: str) -> None:
    value = data.get(field)
    if value is not None and not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        raise ValueError(
            f"request field {field!r} must be {names}, "
            f"got {type(value).__name__} ({what})"
        )


def request_from_dict(data: dict) -> QueryRequest:
    data = _require_mapping(data, "request")
    _reject_unknown(data, _REQUEST_FIELDS, "request")
    for required in ("dataset", "query"):
        if required not in data:
            raise ValueError(f"request is missing the {required!r} field")
    # Type-check here, at the boundary: a string timeout from an HTTP
    # client must be a structured 400, not a TypeError pages later
    # inside a deadline computation.
    _check_type(data, "dataset", (str,), "dataset name")
    _check_type(data, "query", (str, list, tuple), "query")
    _check_type(data, "algorithm", (str,), "algorithm name")
    _check_type(data, "k", (int,), "top-k")
    _check_type(data, "timeout", (int, float), "seconds")
    _check_type(data, "deadline_ms", (int, float), "milliseconds")
    _check_type(data, "use_cache", (bool,), "flag")
    _check_type(data, "allow_partial", (bool,), "flag")
    _check_type(data, "explain", (bool,), "flag")
    _check_type(data, "request_id", (str,), "request id")
    _check_type(data, "trace_id", (str,), "trace id")
    _check_type(data, "parent_span_id", (str,), "span id")
    query = data["query"]
    if not isinstance(query, str) and not all(
        isinstance(keyword, str) for keyword in query
    ):
        raise ValueError("request field 'query' must be a string or list of strings")
    if any(
        isinstance(data.get(field), bool)
        for field in ("k", "timeout", "deadline_ms")
    ):
        raise ValueError(
            "request fields 'k', 'timeout' and 'deadline_ms' must be numbers"
        )
    params = data.get("params")
    if params is not None and not isinstance(params, (dict, SearchParams)):
        raise ValueError(
            f"request field 'params' must be an object, got {type(params).__name__}"
        )
    return QueryRequest(
        dataset=data["dataset"],
        query=query if isinstance(query, str) else tuple(query),
        algorithm=data.get("algorithm", "bidirectional"),
        k=data.get("k"),
        params=(
            params
            if params is None or isinstance(params, SearchParams)
            else params_from_dict(params)
        ),
        timeout=data.get("timeout"),
        deadline_ms=data.get("deadline_ms"),
        use_cache=data.get("use_cache", True),
        allow_partial=data.get("allow_partial", False),
        explain=data.get("explain", False),
        request_id=data.get("request_id"),
        trace_id=data.get("trace_id"),
        parent_span_id=data.get("parent_span_id"),
    )


# ----------------------------------------------------------------------
# SearchResult
# ----------------------------------------------------------------------
def _tree_to_dict(tree: AnswerTree) -> dict:
    return {
        "root": tree.root,
        "paths": [list(path) for path in tree.paths],
        "dists": list(tree.dists),
        "edge_score": tree.edge_score,
        "node_score": tree.node_score,
        "score": tree.score,
    }


def _tree_from_dict(data: dict) -> AnswerTree:
    data = _require_mapping(data, "answer tree")
    return AnswerTree(
        root=data["root"],
        paths=tuple(tuple(path) for path in data["paths"]),
        dists=tuple(data["dists"]),
        edge_score=data["edge_score"],
        node_score=data["node_score"],
        score=data["score"],
    )


def _answer_to_dict(answer: OutputAnswer) -> dict:
    return {
        "tree": _tree_to_dict(answer.tree),
        "generated_at": answer.generated_at,
        "generated_pops": answer.generated_pops,
        "output_at": answer.output_at,
        "output_pops": answer.output_pops,
        "generated_touched": answer.generated_touched,
        "output_touched": answer.output_touched,
    }


def _answer_from_dict(data: dict) -> OutputAnswer:
    data = _require_mapping(data, "answer")
    return OutputAnswer(
        tree=_tree_from_dict(data["tree"]),
        generated_at=data["generated_at"],
        generated_pops=data["generated_pops"],
        output_at=data["output_at"],
        output_pops=data["output_pops"],
        generated_touched=data.get("generated_touched", 0),
        output_touched=data.get("output_touched", 0),
    )


def result_to_dict(result: SearchResult) -> dict:
    stats = result.stats
    return {
        "algorithm": result.algorithm,
        "keywords": list(result.keywords),
        "answers": [_answer_to_dict(answer) for answer in result.answers],
        "stats": stats.as_dict() if stats is not None else None,
        "complete": result.complete,
        "cancel_reason": result.cancel_reason,
        "explain": result.explain,
    }


def _stats_from_dict(data: Optional[dict]) -> Optional[SearchStats]:
    if data is None:
        return None
    data = _require_mapping(data, "stats")
    stats = SearchStats(
        nodes_explored=data.get("nodes_explored", 0),
        nodes_touched=data.get("nodes_touched", 0),
        edges_explored=data.get("edges_explored", 0),
        answers_generated=data.get("answers_generated", 0),
        answers_output=data.get("answers_output", 0),
        duplicates_discarded=data.get("duplicates_discarded", 0),
        started_at=0.0,
        finished_at=data.get("elapsed", 0.0),
    )
    for name in COST_FIELDS:
        setattr(stats, name, data.get(name, 0))
    return stats


def result_from_dict(data: dict) -> SearchResult:
    data = _require_mapping(data, "result")
    return SearchResult(
        algorithm=data["algorithm"],
        keywords=tuple(data["keywords"]),
        answers=[_answer_from_dict(answer) for answer in data["answers"]],
        stats=_stats_from_dict(data.get("stats")),
        complete=data.get("complete", True),
        cancel_reason=data.get("cancel_reason"),
        explain=data.get("explain"),
    )


# ----------------------------------------------------------------------
# QueryResponse
# ----------------------------------------------------------------------
def response_to_dict(response: QueryResponse) -> dict:
    return {
        "request": (
            request_to_dict(response.request)
            if response.request is not None
            else None
        ),
        "result": (
            result_to_dict(response.result)
            if response.result is not None
            else None
        ),
        "error": response.error,
        "error_type": response.error_type,
        "cached": response.cached,
        "elapsed": response.elapsed,
        "request_id": response.request_id,
        "trace_id": response.trace_id,
        "spans": response.spans,
    }


def error_response_dict(
    request: Optional[dict],
    error: str,
    error_type: str,
    *,
    elapsed: float = 0.0,
) -> dict:
    """A response-shaped error dict, built in one place.

    The worker loop, the pool's crash fail-over and the HTTP batch
    handler all need to synthesize wire responses without a
    ``QueryResponse`` in hand; sharing the literal keeps the shape in
    the module that owns the format.
    """
    raw = request if isinstance(request, dict) else None
    return {
        "request": raw,
        "result": None,
        "error": error,
        "error_type": error_type,
        "cached": False,
        "elapsed": elapsed,
        "request_id": raw.get("request_id") if raw else None,
        "trace_id": raw.get("trace_id") if raw else None,
        "spans": None,
    }


def response_from_dict(data: dict) -> QueryResponse:
    data = _require_mapping(data, "response")
    request = data.get("request")
    result = data.get("result")
    return QueryResponse(
        request=request_from_dict(request) if request is not None else None,
        result=result_from_dict(result) if result is not None else None,
        error=data.get("error"),
        error_type=data.get("error_type"),
        cached=data.get("cached", False),
        elapsed=data.get("elapsed", 0.0),
        request_id=data.get("request_id"),
        trace_id=data.get("trace_id"),
        spans=data.get("spans"),
    )
