"""Frozen search graph: forward + derived backward edges, compact arrays.

The :class:`SearchGraph` is what every search algorithm operates on.  It
contains, for each original forward edge ``u -> v`` of the
:class:`~repro.graph.digraph.DataGraph`, both that edge and the derived
backward edge ``v -> u`` weighted per :func:`repro.graph.weights.backward_edge_weight`.
Answer trees are rooted directed trees over this combined edge set
(paper Sections 2.1 and 2.3).

Two representations coexist:

* tuple-based adjacency lists, used by the pure-Python search loops
  (fastest for per-node neighbour iteration), and
* a lazily built CSR array set mirroring the paper's compact
  ``16*|V| + 8*|E|`` byte index (Section 5.1): an ``int64`` indptr plus a
  ``float64`` prestige value per vertex (16 bytes) and an ``int32``
  target plus ``float32`` weight per combined edge (8 bytes).  The
  memory-footprint benchmark validates this formula.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import UnknownNodeError
from repro.graph.weights import backward_edge_weight

__all__ = ["SearchGraph", "Edge"]

#: Adjacency entry: (neighbour, weight, is_forward).
Edge = tuple[int, float, bool]


class SearchGraph:
    """Immutable weighted directed graph with forward and backward edges."""

    def __init__(self) -> None:
        # Populated by the _from_datagraph factory only.
        self._out: tuple[tuple[Edge, ...], ...] = ()
        self._in: tuple[tuple[Edge, ...], ...] = ()
        self._labels: tuple[str, ...] = ()
        self._tables: tuple[Optional[str], ...] = ()
        self._refs: tuple[Optional[tuple[str, Hashable]], ...] = ()
        self._num_forward_edges = 0
        self._prestige: np.ndarray = np.zeros(0)
        self._in_inv_weight_sum: tuple[float, ...] = ()
        self._out_inv_weight_sum: tuple[float, ...] = ()
        self._csr_cache: Optional[dict[str, np.ndarray]] = None
        self._ref_to_node: Optional[dict[tuple[str, Hashable], int]] = None

    # ------------------------------------------------------------------
    # construction (from DataGraph.freeze only)
    # ------------------------------------------------------------------
    @classmethod
    def _from_datagraph(cls, dg, prestige=None) -> "SearchGraph":
        n = dg.num_nodes
        out_lists: list[list[Edge]] = [[] for _ in range(n)]
        in_lists: list[list[Edge]] = [[] for _ in range(n)]
        for u, v, w in dg.forward_edges():
            out_lists[u].append((v, w, True))
            in_lists[v].append((u, w, True))
            bw = backward_edge_weight(w, dg.indegree(v))
            out_lists[v].append((u, bw, False))
            in_lists[u].append((v, bw, False))

        g = cls()
        g._out = tuple(tuple(edges) for edges in out_lists)
        g._in = tuple(tuple(edges) for edges in in_lists)
        g._labels = tuple(dg.label(i) for i in range(n))
        g._tables = tuple(dg.table(i) for i in range(n))
        g._refs = tuple(dg.ref(i) for i in range(n))
        g._num_forward_edges = dg.num_edges
        if prestige is None:
            g._prestige = (
                np.full(n, 1.0 / n, dtype=np.float64) if n else np.zeros(0, dtype=np.float64)
            )
        else:
            g._prestige = cls._validate_prestige(prestige, n)
        g._in_inv_weight_sum = tuple(
            sum(1.0 / w for _, w, _ in edges) for edges in g._in
        )
        g._out_inv_weight_sum = tuple(
            sum(1.0 / w for _, w, _ in edges) for edges in g._out
        )
        return g

    @classmethod
    def _from_adjacency(
        cls,
        *,
        out: Sequence[Sequence[Edge]],
        in_: Sequence[Sequence[Edge]],
        labels: Sequence[str],
        tables: Sequence[Optional[str]],
        refs: Sequence[Optional[tuple[str, Hashable]]],
        num_forward_edges: int,
        prestige,
        in_inv_weight_sum: Optional[Sequence[float]] = None,
        out_inv_weight_sum: Optional[Sequence[float]] = None,
    ) -> "SearchGraph":
        """Rebuild a graph from pre-derived adjacency lists.

        Snapshot loading (:mod:`repro.service.snapshot`) uses this to
        restore a frozen graph without re-deriving backward edges.  Both
        adjacency sides are taken verbatim — preserving the original edge
        iteration order is what makes restored searches bit-identical.
        The ``sum(1/w)`` activation normalizers are taken verbatim too
        when given (snapshots store them); otherwise they are recomputed
        in that same edge order.
        """
        n = len(out)
        if len(in_) != n or len(labels) != n or len(tables) != n or len(refs) != n:
            raise ValueError("adjacency and per-node metadata lengths disagree")
        g = cls()
        g._out = tuple(tuple(edges) for edges in out)
        g._in = tuple(tuple(edges) for edges in in_)
        g._labels = tuple(labels)
        g._tables = tuple(tables)
        g._refs = tuple(refs)
        g._num_forward_edges = int(num_forward_edges)
        g._prestige = cls._validate_prestige(prestige, n)
        g._in_inv_weight_sum = (
            tuple(in_inv_weight_sum)
            if in_inv_weight_sum is not None
            else tuple(sum(1.0 / w for _, w, _ in edges) for edges in g._in)
        )
        g._out_inv_weight_sum = (
            tuple(out_inv_weight_sum)
            if out_inv_weight_sum is not None
            else tuple(sum(1.0 / w for _, w, _ in edges) for edges in g._out)
        )
        if len(g._in_inv_weight_sum) != n or len(g._out_inv_weight_sum) != n:
            raise ValueError("inv-weight-sum lengths disagree with adjacency")
        return g

    @staticmethod
    def _validate_prestige(prestige, n: int) -> np.ndarray:
        vec = np.asarray(prestige, dtype=np.float64)
        if vec.shape != (n,):
            raise ValueError(f"prestige vector must have shape ({n},), got {vec.shape}")
        if np.any(vec < 0.0):
            raise ValueError("prestige values must be non-negative")
        return vec.copy()

    def with_prestige(self, prestige) -> "SearchGraph":
        """Return a structurally shared copy using the given prestige vector."""
        g = SearchGraph()
        g._out = self._out
        g._in = self._in
        g._labels = self._labels
        g._tables = self._tables
        g._refs = self._refs
        g._num_forward_edges = self._num_forward_edges
        g._in_inv_weight_sum = self._in_inv_weight_sum
        g._out_inv_weight_sum = self._out_inv_weight_sum
        g._prestige = self._validate_prestige(prestige, self.num_nodes)
        g._ref_to_node = self._ref_to_node
        return g

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_forward_edges(self) -> int:
        """Number of original (forward) edges."""
        return self._num_forward_edges

    @property
    def num_edges(self) -> int:
        """Number of combined directed edges.

        Equals ``2 * num_forward_edges`` on a freshly frozen graph; an
        edge-policy view (:mod:`repro.graph.policy`) may drop forward
        and backward edges asymmetrically, so the count comes from the
        adjacency itself.
        """
        return sum(len(edges) for edges in self._out)

    def out_edges(self, u: int) -> Sequence[Edge]:
        """Edges leaving ``u`` as ``(target, weight, is_forward)`` tuples."""
        self._check_node(u)
        return self._out[u]

    def in_edges(self, v: int) -> Sequence[Edge]:
        """Edges entering ``v`` as ``(source, weight, is_forward)`` tuples."""
        self._check_node(v)
        return self._in[v]

    def out_degree(self, u: int) -> int:
        self._check_node(u)
        return len(self._out[u])

    def in_degree(self, v: int) -> int:
        self._check_node(v)
        return len(self._in[v])

    def label(self, node: int) -> str:
        self._check_node(node)
        return self._labels[node]

    def table(self, node: int) -> Optional[str]:
        self._check_node(node)
        return self._tables[node]

    def ref(self, node: int) -> Optional[tuple[str, Hashable]]:
        """The ``(table, primary key)`` the node was built from, if any."""
        self._check_node(node)
        return self._refs[node]

    def node_by_ref(self, table: str, pk: Hashable) -> int:
        """Inverse of :meth:`ref`; built lazily on first use."""
        if self._ref_to_node is None:
            self._ref_to_node = {
                ref: node for node, ref in enumerate(self._refs) if ref is not None
            }
        return self._ref_to_node[(table, pk)]

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def edge_weight(self, u: int, v: int) -> float:
        """Smallest weight among (possibly parallel) edges ``u -> v``."""
        self._check_node(u)
        best = None
        for target, w, _ in self._out[u]:
            if target == v and (best is None or w < best):
                best = w
        if best is None:
            raise UnknownNodeError(v)
        return best

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchGraph(nodes={self.num_nodes}, "
            f"forward_edges={self.num_forward_edges}, edges={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # prestige and activation support
    # ------------------------------------------------------------------
    @property
    def prestige(self) -> np.ndarray:
        """Per-node prestige vector (read-only view)."""
        view = self._prestige.view()
        view.flags.writeable = False
        return view

    def node_prestige(self, node: int) -> float:
        self._check_node(node)
        return float(self._prestige[node])

    @property
    def max_prestige(self) -> float:
        return float(self._prestige.max()) if self.num_nodes else 0.0

    def in_inv_weight_sum(self, v: int) -> float:
        """``sum(1/w)`` over edges entering ``v``; activation normalizer."""
        self._check_node(v)
        return self._in_inv_weight_sum[v]

    def out_inv_weight_sum(self, u: int) -> float:
        """``sum(1/w)`` over edges leaving ``u``; activation normalizer."""
        self._check_node(u)
        return self._out_inv_weight_sum[u]

    # ------------------------------------------------------------------
    # compact CSR arrays (paper Section 5.1 memory model)
    # ------------------------------------------------------------------
    def csr_arrays(self) -> dict[str, np.ndarray]:
        """Compact out-adjacency arrays, built once and cached.

        Returns a dict with keys ``indptr`` (int64, n+1), ``dst``
        (int32, m), ``weight`` (float32, m) and ``prestige``
        (float64, n), where m counts combined edges.
        """
        if self._csr_cache is None:
            n = self.num_nodes
            m = self.num_edges
            indptr = np.zeros(n + 1, dtype=np.int64)
            dst = np.zeros(m, dtype=np.int32)
            weight = np.zeros(m, dtype=np.float32)
            pos = 0
            for u in range(n):
                indptr[u] = pos
                for v, w, _ in self._out[u]:
                    dst[pos] = v
                    weight[pos] = w
                    pos += 1
            indptr[n] = pos
            self._csr_cache = {
                "indptr": indptr,
                "dst": dst,
                "weight": weight,
                "prestige": self._prestige.astype(np.float64),
            }
        return self._csr_cache

    def compact_nbytes(self) -> int:
        """Bytes used by the compact index (paper: ``16|V| + 8|E|``)."""
        arrays = self.csr_arrays()
        return sum(int(a.nbytes) for a in arrays.values())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._out):
            raise UnknownNodeError(node)
