"""Dataset generators: determinism, shape properties, scaling."""

import random
from collections import Counter

import pytest

from repro.datasets import (
    DblpConfig,
    ImdbConfig,
    NamePool,
    PatentsConfig,
    make_dblp,
    make_imdb,
    make_patents,
)

SMALL_DBLP = DblpConfig().scaled(0.25)
SMALL_IMDB = ImdbConfig().scaled(0.25)
SMALL_PATENTS = PatentsConfig().scaled(0.25)


class TestNamePool:
    def test_person_format(self):
        pool = NamePool()
        rng = random.Random(0)
        name = pool.person(rng)
        first, last = name.split(" ", 1)
        assert first[0].isupper() and last[0].isupper()

    def test_common_first_names_repeat(self):
        pool = NamePool(rare_last_fraction=0.0)
        rng = random.Random(0)
        firsts = Counter(pool.person(rng).split()[0] for _ in range(500))
        assert firsts.most_common(1)[0][1] > 20  # "John"-like skew

    def test_rare_surnames_unique(self):
        pool = NamePool(rare_last_fraction=1.0)
        rng = random.Random(0)
        lasts = [pool.person(rng).split()[1] for _ in range(100)]
        assert len(set(lasts)) == 100

    def test_company_names_cycle(self):
        pool = NamePool()
        rng = random.Random(0)
        assert pool.company(rng, 0) == "Microsoft"
        assert pool.company(rng, 24).startswith("Microsoft ")


@pytest.mark.parametrize(
    "maker,config",
    [
        (make_dblp, SMALL_DBLP),
        (make_imdb, SMALL_IMDB),
        (make_patents, SMALL_PATENTS),
    ],
)
class TestGeneratorsCommon:
    def test_deterministic(self, maker, config):
        a = maker(config)
        b = maker(config)
        for table in a.schema.table_names():
            assert list(a.rows(table)) == list(b.rows(table))

    def test_referential_integrity(self, maker, config):
        db = maker(config)
        for fk in db.schema.foreign_keys:
            for row in db.rows(fk.table):
                value = row[fk.column]
                if value is not None:
                    assert db.has(fk.ref_table, value)

    def test_nonempty(self, maker, config):
        db = maker(config)
        for table in db.schema.table_names():
            assert db.count(table) > 0


class TestDblpShape:
    def test_sizes_match_config(self):
        db = make_dblp(SMALL_DBLP)
        assert db.count("author") == SMALL_DBLP.n_authors
        assert db.count("paper") == SMALL_DBLP.n_papers
        assert db.count("conference") == SMALL_DBLP.n_conferences

    def test_conference_hubs_are_skewed(self):
        db = make_dblp(SMALL_DBLP)
        sizes = Counter(row["conf_id"] for row in db.rows("paper"))
        biggest = max(sizes.values())
        smallest = min(sizes.values())
        assert biggest > 2 * smallest  # hub fan-in skew

    def test_prolific_authors_exist(self):
        db = make_dblp(SMALL_DBLP)
        papers_per_author = Counter(row["author_id"] for row in db.rows("writes"))
        assert max(papers_per_author.values()) >= 5

    def test_citations_point_backward(self):
        db = make_dblp(SMALL_DBLP)
        for row in db.rows("cites"):
            assert row["cited_id"] < row["citing_id"]

    def test_scaled_shrinks(self):
        tiny = DblpConfig().scaled(0.1)
        assert tiny.n_papers < DblpConfig().n_papers


class TestImdbShape:
    def test_genre_hub(self):
        db = make_imdb(SMALL_IMDB)
        genre_sizes = Counter(row["genre_id"] for row in db.rows("movie"))
        assert max(genre_sizes.values()) > 2 * min(genre_sizes.values())

    def test_every_movie_has_director(self):
        db = make_imdb(SMALL_IMDB)
        directed = {row["movie_id"] for row in db.rows("directs")}
        assert directed == set(db.primary_keys("movie"))


class TestPatentsShape:
    def test_mega_assignee(self):
        db = make_patents(SMALL_PATENTS)
        held = Counter(row["company_id"] for row in db.rows("patent"))
        total = sum(held.values())
        assert held.most_common(1)[0][1] > total * 0.3  # Microsoft-like hub
