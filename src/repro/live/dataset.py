"""``MutableDataset``: versioned live mutations over a frozen engine.

The paper's model assumes a static in-memory graph; a deployment's data
changes under live traffic.  This module closes that gap with an
MVCC-style epoch design:

* **Staging** — :meth:`MutableDataset.add_node` / :meth:`add_edge` /
  :meth:`remove_edge` / :meth:`update_text` apply structured mutations
  to *working* copy-on-write state: touched nodes get private
  adjacency lists, new nodes live in extension arrays, index changes
  live in posting deltas.  Nothing a search can see changes yet.
* **Commit** — :meth:`commit` freezes the working deltas into an
  immutable :class:`~repro.live.overlay.OverlayGraph` +
  :class:`~repro.live.overlay.OverlayIndex` pair, builds a fresh
  :class:`~repro.core.engine.KeywordSearchEngine` over them, and bumps
  the monotone ``version``.  In-flight searches keep the epoch they
  started on; new requests see the new one.
* **Compaction** — when the overlay grows past the configured policy
  the deltas are folded back into flat
  :class:`~repro.graph.SearchGraph` arrays (adjacency order preserved,
  so scores stay bit-identical) and, when ``snapshot_path`` is set, a
  fresh versioned ``.npz`` snapshot is written via
  :mod:`repro.service.snapshot` — the EMBANKS reload story.

Incremental maintenance is the subtle part: a forward edge into ``v``
changes ``indegree(v)``, and with it the weight of *every* derived
backward edge out of ``v`` (``w * log2(1 + indegree)``, paper
Section 2.3).  :meth:`add_edge` / :meth:`remove_edge` therefore reweight
``v``'s backward adjacency and each affected partner's in-list, and the
``sum(1/w)`` activation normalizers of touched nodes are re-summed in
adjacency order — which keeps every float bit-identical to a
from-scratch rebuild of the final state (the equivalence property
``tests/property/test_prop_live.py`` pins).

Prestige policy: mutations do **not** rerun PageRank (the paper treats
prestige as precomputed).  Existing nodes keep their prestige; new
nodes get ``new_node_prestige`` (default: the base mean).  Pass
``commit(recompute_prestige=True)`` to rerun the biased PageRank over
the overlay when ranking drift matters more than commit latency.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Union

import numpy as np

from repro.core.engine import KeywordSearchEngine
from repro.core.params import SearchParams
from repro.errors import MutationError
from repro.graph.searchgraph import Edge, SearchGraph
from repro.graph.weights import DEFAULT_FORWARD_WEIGHT, backward_edge_weight
from repro.index.inverted import InvertedIndex
from repro.index.tokenizer import tokenize
from repro.live.mutations import (
    AddEdge,
    AddNode,
    Mutation,
    RemoveEdge,
    UpdateText,
    coerce_mutations,
)
from repro.live.overlay import OverlayGraph, OverlayIndex

__all__ = ["MutableDataset", "Epoch", "MutationOutcome"]


@dataclass(frozen=True)
class Epoch:
    """One committed, immutable read view of a dataset.

    Searches hold an epoch (usually via its ``engine``) for their whole
    run; later commits produce new epochs and never touch old ones.
    """

    version: int
    graph: Union[SearchGraph, OverlayGraph]
    index: Union[InvertedIndex, OverlayIndex]
    engine: KeywordSearchEngine
    compacted: bool = False


@dataclass(frozen=True)
class MutationOutcome:
    """What :meth:`MutableDataset.mutate` reports back: the new epoch
    plus the real node ids assigned to the batch's ``AddNode``s."""

    epoch: Epoch
    applied: int
    new_nodes: tuple[int, ...]


class MutableDataset:
    """Copy-on-write mutable view over a frozen graph + index pair.

    Parameters
    ----------
    graph / index:
        The flat base state (a :class:`SearchGraph` as produced by
        ``freeze``/snapshot load, and its :class:`InvertedIndex`).
    params:
        Engine parameters for every epoch's engine.
    new_node_prestige:
        Prestige assigned to nodes added without a PageRank rerun;
        defaults to the base vector's mean (new entities rank as
        ordinary citizens, not as hubs or outcasts).
    compact_ratio:
        Fold the overlay back into flat arrays when the number of
        mutations (of any kind) since the last compaction exceeds this
        fraction of the base's forward edges (None disables).
    compact_every:
        Alternatively (or additionally), compact every N commits.
    snapshot_path:
        When set, every compaction writes a fresh versioned snapshot
        here (:func:`repro.service.snapshot.save_snapshot`), so worker
        restarts warm from recent state instead of the original build.
    journal:
        Optional durability sink (:class:`repro.wal.MutationLog`, or
        anything with its ``append(mutations, *, seq=None,
        recompute_prestige=False)`` shape).  Every commit appends its
        wire-mutation batch *before* the new epoch becomes visible
        (write-ahead: a journal failure fails the commit, never the
        other way around), with aliases already resolved to real node
        ids so :meth:`replay` reconstructs identical state.
    """

    def __init__(
        self,
        graph: SearchGraph,
        index: InvertedIndex,
        *,
        params: Optional[SearchParams] = None,
        new_node_prestige: Optional[float] = None,
        compact_ratio: Optional[float] = 0.25,
        compact_every: Optional[int] = None,
        snapshot_path=None,
        journal=None,
    ) -> None:
        if isinstance(graph, OverlayGraph):
            raise MutationError(
                "MutableDataset needs a flat SearchGraph base; compact the "
                "source dataset first"
            )
        if compact_ratio is not None and compact_ratio <= 0:
            raise ValueError(f"compact_ratio must be > 0, got {compact_ratio!r}")
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every!r}")
        self._params = params
        self._compact_ratio = compact_ratio
        self._compact_every = compact_every
        self._snapshot_path = snapshot_path
        self._journal = journal
        self._lock = threading.RLock()
        self._version = 0
        self._commits = 0
        self._muts_since_compact = 0
        self._applied_total = 0
        self._rebase(graph, index)
        if new_node_prestige is None:
            new_node_prestige = (
                float(self._prestige_base.mean()) if graph.num_nodes else 1.0
            )
        if new_node_prestige < 0:
            raise ValueError(
                f"new_node_prestige must be >= 0, got {new_node_prestige!r}"
            )
        self._new_node_prestige = new_node_prestige
        self._epoch = Epoch(
            version=0,
            graph=graph,
            index=index,
            engine=KeywordSearchEngine(graph, index, params=params),
        )

    def _rebase(self, graph: SearchGraph, index: InvertedIndex) -> None:
        """Reset all delta state on top of a new flat base (construction
        and compaction)."""
        self._base_graph = graph
        self._base_index = index
        self._base_n = graph.num_nodes
        base_post, _ = index._export_postings()
        self._base_post = base_post
        # Working (mutable) state — what staging edits.
        self._out: dict[int, list[Edge]] = {}
        self._in: dict[int, list[Edge]] = {}
        self._labels_ext: list[str] = []
        self._tables_ext: list[Optional[str]] = []
        self._refs_ext: list[Optional[tuple[str, Hashable]]] = []
        self._prestige_ext: list[float] = []
        self._prestige_base = np.asarray(graph.prestige, dtype=np.float64)
        self._fwd_count = graph.num_forward_edges
        self._edge_count = graph.num_edges
        self._added: dict[str, set[int]] = {}
        self._removed: dict[str, set[int]] = {}
        self._rel_added: dict[str, set[int]] = {}
        self._node_terms: Optional[dict[int, set[str]]] = None
        # Committed (frozen) overlay — what epochs are built from.
        self._frozen_out: dict[int, tuple[Edge, ...]] = {}
        self._frozen_in: dict[int, tuple[Edge, ...]] = {}
        self._out_invw: dict[int, float] = {}
        self._in_invw: dict[int, float] = {}
        self._f_added: dict[str, frozenset[int]] = {}
        self._f_removed: dict[str, frozenset[int]] = {}
        self._f_rel_added: dict[str, frozenset[int]] = {}
        # Staging bookkeeping (cleared on commit, restored on rollback).
        self._dirty_nodes: set[int] = set()
        self._dirty_terms: set[str] = set()
        self._staged = 0
        # Wire-dict mirror of the staged mutations, aliases resolved —
        # what the journal records at commit so replay is exact.
        self._staged_wire: list[dict] = []
        self._committed_ext = 0
        self._committed_fwd = self._fwd_count
        self._committed_edges = self._edge_count
        self._committed_muts = self._muts_since_compact

    # ------------------------------------------------------------------
    # construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def from_engine(cls, engine: KeywordSearchEngine, **knobs) -> "MutableDataset":
        """Wrap an already-built engine's graph + index."""
        knobs.setdefault("params", engine.params)
        return cls(engine.graph, engine.index, **knobs)

    @classmethod
    def from_database(cls, db, **knobs) -> "MutableDataset":
        """Build graph, prestige and index from ``db``, then wrap."""
        return cls.from_engine(
            KeywordSearchEngine.from_database(db), **knobs
        )

    @classmethod
    def from_snapshot(
        cls, path, *, storage_mode=None, pin_policy=None, **knobs
    ) -> "MutableDataset":
        """Load a disk snapshot (:mod:`repro.service.snapshot`) and wrap.

        ``storage_mode="mapped"`` serves the base tier through
        ``np.memmap`` — live mutations still overlay in plain RAM (the
        overlay is built from deltas, never written through), so the
        mapped base file stays strictly read-only.
        """
        from repro.service.snapshot import load_snapshot

        graph, index = load_snapshot(
            path, storage_mode=storage_mode, pin_policy=pin_policy
        )
        return cls(graph, index, **knobs)

    @classmethod
    def replay(
        cls,
        log,
        *,
        snapshot=None,
        graph: Optional[SearchGraph] = None,
        index: Optional[InvertedIndex] = None,
        start_seq: Optional[int] = None,
        strict: bool = True,
        storage_mode=None,
        pin_policy=None,
        **knobs,
    ) -> "MutableDataset":
        """Reconstruct a live dataset by replaying a mutation log onto
        its base state — the crash-recovery path.

        ``log`` is a :class:`repro.wal.MutationLog` (or a path to one,
        opened read-only).  The base is either a ``snapshot`` file
        (``start_seq`` defaults to its header's ``dataset_version``) or
        an explicit ``graph`` + ``index`` pair (``start_seq`` defaults
        to the log's oldest retained base).  Records with
        ``seq <= start_seq`` are already baked into the base and are
        skipped; the rest must be contiguous from ``start_seq + 1`` —
        a gap means the log was truncated past this snapshot and exact
        recovery is impossible, which raises
        :class:`~repro.errors.WalError` rather than silently rebuilding
        a different state.  With ``strict=False`` a record that fails
        to apply stops the replay at the previous epoch (with a
        warning) instead of raising — the degraded-but-serving choice a
        restarting replica makes.

        The replayed dataset's ``version`` equals the number of records
        applied, so ``start_seq + dataset.version`` lands exactly on
        the log's last replayed sequence number.
        """
        from repro.wal.log import MutationLog

        if "journal" in knobs:
            raise ValueError(
                "replay() does not accept journal=; attach the journal "
                "after replaying (re-journaling replayed records would "
                "duplicate them)"
            )
        if not hasattr(log, "records"):
            log = MutationLog(log, readonly=True)
        if snapshot is not None:
            if graph is not None or index is not None:
                raise ValueError("pass snapshot= or graph=+index=, not both")
            from repro.service.snapshot import load_snapshot, snapshot_info

            if start_seq is None:
                start_seq = int(snapshot_info(snapshot).get("dataset_version") or 0)
            # Replay overlays mutations in RAM on top of whatever tier
            # the base loads into; a mapped base is never written.
            graph, index = load_snapshot(
                snapshot, storage_mode=storage_mode, pin_policy=pin_policy
            )
        elif graph is None or index is None:
            raise ValueError("replay() needs snapshot= or graph=+index=")
        elif start_seq is None:
            start_seq = log.first_base
        dataset = cls(graph, index, **knobs)
        dataset.replay_records(
            log.records(start_after=start_seq),
            expected=start_seq + 1,
            strict=strict,
        )
        return dataset

    def replay_records(
        self, records, *, expected: int, strict: bool = True
    ) -> int:
        """Apply an iterable of :class:`~repro.wal.WalRecord` in order.

        ``expected`` names the sequence number the first record must
        carry; a gap raises :class:`~repro.errors.WalError` (exact
        recovery is impossible), as does a record that fails to apply —
        unless ``strict=False``, which stops at the previous epoch with
        a warning instead (the degraded-but-serving replica choice).
        Returns the number of records applied.  Shared by
        :meth:`replay` and ``QueryService.attach_wal`` so the two
        recovery paths cannot drift.
        """
        import warnings

        from repro.errors import WalError

        applied = 0
        for record in records:
            if record.seq != expected:
                raise WalError(
                    f"replay gap: log record seq {record.seq} does not "
                    f"continue {expected - 1} (the log no longer reaches "
                    f"back to this snapshot; recover from a newer one)"
                )
            try:
                self._replay_record(record)
            except Exception as exc:
                if strict:
                    raise WalError(
                        f"WAL record seq {record.seq} failed to apply: {exc}"
                    ) from exc
                warnings.warn(
                    f"WAL replay stopped before seq {record.seq} "
                    f"(record failed to apply: {exc}); serving the last "
                    f"recovered epoch {expected - 1}",
                    stacklevel=2,
                )
                break
            applied += 1
            expected += 1
        return applied

    def _replay_record(self, record) -> Epoch:
        """Apply one :class:`~repro.wal.WalRecord` as a single commit,
        with journaling suspended (the record *is* the journal)."""
        with self._lock:
            journal, self._journal = self._journal, None
            try:
                batch = coerce_mutations(record.mutations)
                new_nodes: list[int] = []
                try:
                    for mutation in batch:
                        self._apply_one(mutation, new_nodes)
                except Exception:
                    self.rollback()
                    raise
                return self.commit(
                    recompute_prestige=record.recompute_prestige
                )
            finally:
                self._journal = journal

    # ------------------------------------------------------------------
    # journal (durability sink)
    # ------------------------------------------------------------------
    @property
    def journal(self):
        """The attached durability sink, or None."""
        return self._journal

    def attach_journal(self, journal) -> None:
        """Attach (or replace) the commit journal.

        Attach only when the sink's last sequence matches the state the
        dataset currently serves — commits append with auto-assigned
        sequence numbers, and :class:`repro.wal.MutationLog` rejects a
        discontinuous append, failing the commit loudly rather than
        recording unreplayable history.
        """
        with self._lock:
            self._journal = journal

    # ------------------------------------------------------------------
    # epoch access (lock-free reads: epochs are immutable)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._epoch.version

    @property
    def epoch(self) -> Epoch:
        return self._epoch

    @property
    def engine(self) -> KeywordSearchEngine:
        return self._epoch.engine

    @property
    def graph(self):
        return self._epoch.graph

    @property
    def index(self):
        return self._epoch.index

    def stats(self) -> dict:
        """Overlay size counters (for metrics and compaction tuning)."""
        with self._lock:
            return {
                "version": self._epoch.version,
                "commits": self._commits,
                "mutations_applied": self._applied_total,
                "base_nodes": self._base_n,
                "added_nodes": len(self._labels_ext),
                "touched_nodes": len(self._frozen_out),
                "forward_edges": self._fwd_count,
                "staged": self._staged,
                "mutations_since_compaction": self._muts_since_compact,
            }

    # ------------------------------------------------------------------
    # staging
    # ------------------------------------------------------------------
    def add_node(
        self,
        label: str = "",
        *,
        table: Optional[str] = None,
        ref: Optional[tuple[str, Hashable]] = None,
        text: Optional[str] = None,
        prestige: Optional[float] = None,
    ) -> int:
        """Stage a new node; returns its (immediately final) id.

        ``table`` registers the node under the relation name (paper
        Section 2.2 semantics: a keyword matching a relation name
        matches every tuple of it); ``text`` indexes the node's terms —
        together they mirror what :func:`repro.index.build_index` does
        for one inserted tuple.  ``prestige`` overrides the dataset's
        ``new_node_prestige`` default; the journal always records the
        resolved value, so replay assigns it bit-identically regardless
        of which snapshot lineage it starts from.
        """
        with self._lock:
            if prestige is None:
                prestige = self._new_node_prestige
            else:
                prestige = float(prestige)
                if prestige < 0:
                    raise MutationError(
                        f"prestige must be >= 0, got {prestige!r}"
                    )
            node = self._base_n + len(self._labels_ext)
            self._labels_ext.append(label)
            self._tables_ext.append(table)
            self._refs_ext.append(ref if ref is None else tuple(ref))
            self._prestige_ext.append(prestige)
            self._out[node] = []
            self._in[node] = []
            self._dirty_nodes.add(node)
            if table is not None:
                for term in tokenize(table):
                    self._rel_added.setdefault(term, set()).add(node)
                    self._dirty_terms.add(term)
            if text:
                terms = set(tokenize(text))
                for term in terms:
                    self._post_add(term, node)
                if self._node_terms is not None:
                    self._node_terms[node] = terms
            self._staged_wire.append(
                {
                    "op": "add_node",
                    "label": label,
                    "table": table,
                    "ref": list(ref) if ref is not None else None,
                    "text": text,
                    "prestige": prestige,
                }
            )
            self._staged += 1
            self._muts_since_compact += 1
            return node

    def add_edge(
        self, u: int, v: int, weight: float = DEFAULT_FORWARD_WEIGHT
    ) -> None:
        """Stage a forward edge ``u -> v`` plus its derived backward
        edge, reweighting ``v``'s other backward edges for the new
        indegree."""
        with self._lock:
            self._check_node(u, "add_edge u")
            self._check_node(v, "add_edge v")
            if u == v:
                raise MutationError(f"self loops are not allowed (node {u})")
            weight = float(weight)
            if weight <= 0.0:
                raise MutationError(f"edge weight must be > 0, got {weight!r}")
            self._wlist(self._out, u).append((v, weight, True))
            self._wlist(self._in, v).append((u, weight, True))
            indegree = self._fwd_indegree(v)
            bw = backward_edge_weight(weight, indegree)
            self._wlist(self._out, v).append((u, bw, False))
            self._wlist(self._in, u).append((v, bw, False))
            self._dirty_nodes.add(u)
            self._dirty_nodes.add(v)
            self._reweight_backward(v, indegree)
            self._fwd_count += 1
            self._edge_count += 2
            self._staged_wire.append(
                {"op": "add_edge", "u": u, "v": v, "weight": weight}
            )
            self._staged += 1
            self._muts_since_compact += 1

    def remove_edge(
        self, u: int, v: int, weight: Optional[float] = None
    ) -> None:
        """Stage removal of one forward edge ``u -> v`` (the
        earliest-inserted match; ``weight`` narrows it among parallel
        edges), dropping its backward twin and reweighting ``v``'s
        remaining backward edges for the reduced indegree."""
        with self._lock:
            self._check_node(u, "remove_edge u")
            self._check_node(v, "remove_edge v")
            out_u = self._wlist(self._out, u)
            found = None
            for i, (target, w, forward) in enumerate(out_u):
                if (
                    forward
                    and target == v
                    and (weight is None or w == float(weight))
                ):
                    found = (i, w)
                    break
            if found is None:
                described = f"{u} -> {v}" + (
                    f" (weight {weight!r})" if weight is not None else ""
                )
                raise MutationError(f"no forward edge {described} to remove")
            i, w = found
            indegree_old = self._fwd_indegree(v)
            bw_old = backward_edge_weight(w, indegree_old)
            del out_u[i]
            self._remove_first(self._wlist(self._in, v), (u, w, True))
            self._remove_first(self._wlist(self._out, v), (u, bw_old, False))
            self._remove_first(self._wlist(self._in, u), (v, bw_old, False))
            self._dirty_nodes.add(u)
            self._dirty_nodes.add(v)
            indegree_new = indegree_old - 1
            if indegree_new:
                self._reweight_backward(v, indegree_new)
            self._fwd_count -= 1
            self._edge_count -= 2
            self._staged_wire.append(
                {"op": "remove_edge", "u": u, "v": v, "weight": w}
            )
            self._staged += 1
            self._muts_since_compact += 1

    def update_text(self, node: int, text: str) -> None:
        """Stage replacement of ``node``'s indexed text terms with the
        tokens of ``text`` (relation-name postings stay)."""
        with self._lock:
            self._check_node(node, "update_text node")
            node_terms = self._ensure_node_terms()
            old = node_terms.get(node, set())
            new = set(tokenize(text))
            for term in old - new:
                self._post_remove(term, node)
            for term in new - old:
                self._post_add(term, node)
            node_terms[node] = new
            self._staged_wire.append(
                {"op": "update_text", "node": node, "text": text}
            )
            self._staged += 1
            self._muts_since_compact += 1

    def mutate(self, mutations: Sequence) -> MutationOutcome:
        """Apply a whole batch atomically, then commit.

        ``mutations`` holds mutation objects or their wire dicts
        (:mod:`repro.live.mutations`); negative node ids are batch
        aliases (``-(k+1)`` names the k-th ``AddNode`` of this batch).
        Any failure rolls back *all* uncommitted staging — a malformed
        batch never leaves half its edges behind — and re-raises.
        """
        with self._lock:
            batch = coerce_mutations(mutations)
            new_nodes: list[int] = []
            try:
                for mutation in batch:
                    self._apply_one(mutation, new_nodes)
                # Commit inside the same rollback scope: a journal
                # failure (disk full, misaligned log) must discard the
                # staging too, or the "failed" batch would silently
                # ride along with the next commit.  A failure *after*
                # the epoch is installed (e.g. a compaction snapshot
                # write) leaves nothing staged, so the rollback below
                # degrades to a no-op and the commit stands.
                epoch = self.commit()
            except Exception:
                self.rollback()
                raise
            return MutationOutcome(
                epoch=epoch, applied=len(batch), new_nodes=tuple(new_nodes)
            )

    def _apply_one(self, mutation: Mutation, new_nodes: list[int]) -> None:
        if isinstance(mutation, AddNode):
            new_nodes.append(
                self.add_node(
                    mutation.label,
                    table=mutation.table,
                    ref=mutation.ref,
                    text=mutation.text,
                    prestige=mutation.prestige,
                )
            )
        elif isinstance(mutation, AddEdge):
            self.add_edge(
                self._resolve_alias(mutation.u, new_nodes),
                self._resolve_alias(mutation.v, new_nodes),
                mutation.weight,
            )
        elif isinstance(mutation, RemoveEdge):
            self.remove_edge(
                self._resolve_alias(mutation.u, new_nodes),
                self._resolve_alias(mutation.v, new_nodes),
                mutation.weight,
            )
        else:
            self.update_text(
                self._resolve_alias(mutation.node, new_nodes), mutation.text
            )

    @staticmethod
    def _resolve_alias(node: int, new_nodes: list[int]) -> int:
        if node >= 0:
            return node
        k = -node - 1
        if k >= len(new_nodes):
            raise MutationError(
                f"alias {node} refers to the {k + 1}th added node of this "
                f"batch, but only {len(new_nodes)} were added so far"
            )
        return new_nodes[k]

    def rollback(self) -> None:
        """Discard every staged-but-uncommitted change."""
        with self._lock:
            for node in self._dirty_nodes:
                if node >= self._base_n + self._committed_ext:
                    self._out.pop(node, None)
                    self._in.pop(node, None)
                    continue
                self._restore_list(self._out, self._frozen_out, node)
                self._restore_list(self._in, self._frozen_in, node)
            del self._labels_ext[self._committed_ext :]
            del self._tables_ext[self._committed_ext :]
            del self._refs_ext[self._committed_ext :]
            del self._prestige_ext[self._committed_ext :]
            for term in self._dirty_terms:
                self._restore_postings(self._added, self._f_added, term)
                self._restore_postings(self._removed, self._f_removed, term)
                self._restore_postings(self._rel_added, self._f_rel_added, term)
            self._fwd_count = self._committed_fwd
            self._edge_count = self._committed_edges
            self._muts_since_compact = self._committed_muts
            self._node_terms = None  # rebuilt lazily from committed state
            self._dirty_nodes.clear()
            self._dirty_terms.clear()
            self._staged = 0
            self._staged_wire.clear()

    # ------------------------------------------------------------------
    # commit / compaction
    # ------------------------------------------------------------------
    def commit(self, *, recompute_prestige: bool = False) -> Epoch:
        """Freeze staged changes into a new epoch (no-op when nothing
        is staged, so idle commits never invalidate caches).

        With a ``journal`` attached, the staged batch's wire form is
        appended *first* (write-ahead): a journal failure — disk full,
        sequence misalignment — raises here with the staged state
        intact (roll back or retry), and an epoch is never visible that
        the log does not contain.
        """
        with self._lock:
            if not self._staged and not recompute_prestige:
                return self._epoch
            if self._journal is not None:
                self._journal.append(
                    list(self._staged_wire),
                    recompute_prestige=recompute_prestige,
                )
            for node in self._dirty_nodes:
                out = self._current_list(self._out, node)
                in_ = self._current_list(self._in, node)
                self._frozen_out[node] = tuple(out)
                self._frozen_in[node] = tuple(in_)
                self._out_invw[node] = sum(1.0 / w for _, w, _ in out)
                self._in_invw[node] = sum(1.0 / w for _, w, _ in in_)
            for term in self._dirty_terms:
                self._freeze_postings(self._added, self._f_added, term)
                self._freeze_postings(self._removed, self._f_removed, term)
                self._freeze_postings(self._rel_added, self._f_rel_added, term)
            applied = self._staged
            self._dirty_nodes.clear()
            self._dirty_terms.clear()
            self._staged = 0
            self._staged_wire.clear()
            self._committed_ext = len(self._labels_ext)
            self._committed_fwd = self._fwd_count
            self._committed_edges = self._edge_count
            self._committed_muts = self._muts_since_compact
            self._applied_total += applied
            self._version += 1
            self._commits += 1

            graph = self._build_view()
            if recompute_prestige:
                from repro.graph.prestige import compute_prestige

                vec = compute_prestige(graph)
                self._prestige_base = np.asarray(
                    vec[: self._base_n], dtype=np.float64
                )
                self._prestige_ext = [float(p) for p in vec[self._base_n :]]
                graph = self._build_view()
            index = OverlayIndex(
                self._base_index,
                added=self._f_added,
                removed=self._f_removed,
                rel_added=self._f_rel_added,
            )
            self._epoch = Epoch(
                version=self._version,
                graph=graph,
                index=index,
                engine=KeywordSearchEngine(graph, index, params=self._params),
            )
            if self._should_compact():
                self.compact()
            return self._epoch

    def compact(self) -> Epoch:
        """Fold the overlay into flat base arrays (committing any staged
        changes first).  Answers and scores are unchanged — adjacency
        order and every weight survive verbatim — so the version does
        *not* bump and cached results stay valid.  With
        ``snapshot_path`` set, the folded state is written as a fresh
        versioned snapshot."""
        with self._lock:
            if self._staged:
                self.commit()
            graph = self._epoch.graph
            if isinstance(graph, SearchGraph):
                return self._epoch  # already flat: nothing to fold
            n = graph.num_nodes
            flat = SearchGraph._from_adjacency(
                out=[graph.out_edges(u) for u in range(n)],
                in_=[graph.in_edges(u) for u in range(n)],
                labels=[graph.label(u) for u in range(n)],
                tables=[graph.table(u) for u in range(n)],
                refs=[graph.ref(u) for u in range(n)],
                num_forward_edges=graph.num_forward_edges,
                prestige=graph.prestige,
                in_inv_weight_sum=[graph.in_inv_weight_sum(u) for u in range(n)],
                out_inv_weight_sum=[graph.out_inv_weight_sum(u) for u in range(n)],
            )
            index = self._epoch.index
            flat_index = (
                index.materialize() if isinstance(index, OverlayIndex) else index
            )
            self._muts_since_compact = 0  # before _rebase checkpoints it
            self._rebase(flat, flat_index)
            self._epoch = Epoch(
                version=self._version,
                graph=flat,
                index=flat_index,
                engine=KeywordSearchEngine(flat, flat_index, params=self._params),
                compacted=True,
            )
            if self._snapshot_path is not None:
                from repro.service.snapshot import save_snapshot

                save_snapshot(
                    self._snapshot_path, flat, flat_index, version=self._version
                )
            return self._epoch

    def _should_compact(self) -> bool:
        if self._compact_every is not None and self._commits % self._compact_every == 0:
            return self._muts_since_compact > 0
        if self._compact_ratio is not None:
            base_edges = max(self._base_graph.num_forward_edges, 1)
            return self._muts_since_compact >= self._compact_ratio * base_edges
        return False

    # ------------------------------------------------------------------
    # working-state internals (lock held by callers)
    # ------------------------------------------------------------------
    def _check_node(self, node: int, what: str) -> None:
        if not 0 <= node < self._base_n + len(self._labels_ext):
            raise MutationError(f"{what}: node {node} does not exist")

    def _wlist(self, side: dict[int, list[Edge]], node: int) -> list[Edge]:
        """Copy-on-write working adjacency list for ``node``."""
        lst = side.get(node)
        if lst is None:
            frozen = self._frozen_out if side is self._out else self._frozen_in
            committed = frozen.get(node)
            if committed is not None:
                lst = list(committed)
            elif node < self._base_n:
                base = (
                    self._base_graph.out_edges(node)
                    if side is self._out
                    else self._base_graph.in_edges(node)
                )
                lst = list(base)
            else:  # pragma: no cover - ext nodes get lists at add_node
                lst = []
            side[node] = lst
        return lst

    def _current_list(self, side: dict[int, list[Edge]], node: int) -> Sequence[Edge]:
        """Read-only view of ``node``'s current adjacency (no copy)."""
        lst = side.get(node)
        if lst is not None:
            return lst
        frozen = self._frozen_out if side is self._out else self._frozen_in
        committed = frozen.get(node)
        if committed is not None:
            return committed
        if node < self._base_n:
            return (
                self._base_graph.out_edges(node)
                if side is self._out
                else self._base_graph.in_edges(node)
            )
        return ()

    def _restore_list(
        self,
        side: dict[int, list[Edge]],
        frozen: dict[int, tuple[Edge, ...]],
        node: int,
    ) -> None:
        committed = frozen.get(node)
        if committed is not None:
            side[node] = list(committed)
        else:
            side.pop(node, None)

    def _fwd_indegree(self, v: int) -> int:
        return sum(1 for _, _, forward in self._current_list(self._in, v) if forward)

    @staticmethod
    def _remove_first(lst: list[Edge], entry: Edge) -> None:
        try:
            lst.remove(entry)
        except ValueError:  # pragma: no cover - internal invariant
            raise MutationError(
                f"internal adjacency inconsistency removing {entry!r}"
            ) from None

    def _reweight_backward(self, v: int, indegree: int) -> None:
        """Re-derive every backward edge out of ``v`` for its new
        forward ``indegree``, updating both ``v``'s out-list and each
        source node's in-list (positional correspondence: the k-th
        backward entry pairs with the k-th forward edge into ``v``,
        both orders being global edge-insertion order)."""
        forward_sources = [
            (src, w) for src, w, forward in self._current_list(self._in, v) if forward
        ]
        out_v = self._wlist(self._out, v)
        pairs = iter(forward_sources)
        for i, (target, old_w, forward) in enumerate(out_v):
            if forward:
                continue
            src, w = next(pairs)
            if src != target:  # pragma: no cover - internal invariant
                raise MutationError(
                    f"backward adjacency of node {v} out of sync with its in-list"
                )
            new_w = backward_edge_weight(w, indegree)
            if new_w != old_w:
                out_v[i] = (target, new_w, False)
        for src in {src for src, _ in forward_sources}:
            weights = iter(
                w
                for target, w, forward in self._current_list(self._out, src)
                if forward and target == v
            )
            in_src = self._wlist(self._in, src)
            for i, (target, old_w, forward) in enumerate(in_src):
                if forward or target != v:
                    continue
                new_w = backward_edge_weight(next(weights), indegree)
                if new_w != old_w:
                    in_src[i] = (target, new_w, False)
            self._dirty_nodes.add(src)

    # ------------------------------------------------------------------
    # index-delta internals (lock held by callers)
    # ------------------------------------------------------------------
    def _post_add(self, term: str, node: int) -> None:
        removed = self._removed.get(term)
        if removed is not None and node in removed:
            removed.discard(node)
        else:
            base = self._base_post.get(term)
            if base is None or node not in base:
                self._added.setdefault(term, set()).add(node)
        self._dirty_terms.add(term)
        if self._node_terms is not None:
            self._node_terms.setdefault(node, set()).add(term)

    def _post_remove(self, term: str, node: int) -> None:
        added = self._added.get(term)
        if added is not None and node in added:
            added.discard(node)
        else:
            base = self._base_post.get(term)
            if base is not None and node in base:
                self._removed.setdefault(term, set()).add(node)
        self._dirty_terms.add(term)
        if self._node_terms is not None:
            terms = self._node_terms.get(node)
            if terms is not None:
                terms.discard(term)

    def _ensure_node_terms(self) -> dict[int, set[str]]:
        """Reverse map node -> indexed text terms, built on first text
        update from the current (base + delta) posting state."""
        if self._node_terms is None:
            node_terms: dict[int, set[str]] = {}
            for term, nodes in self._base_post.items():
                for node in nodes:
                    node_terms.setdefault(node, set()).add(term)
            for term, nodes in self._removed.items():
                for node in nodes:
                    terms = node_terms.get(node)
                    if terms is not None:
                        terms.discard(term)
            for term, nodes in self._added.items():
                for node in nodes:
                    node_terms.setdefault(node, set()).add(term)
            self._node_terms = node_terms
        return self._node_terms

    @staticmethod
    def _freeze_postings(
        working: dict[str, set], frozen: dict[str, frozenset], term: str
    ) -> None:
        nodes = working.get(term)
        if nodes:
            frozen[term] = frozenset(nodes)
        else:
            working.pop(term, None)
            frozen.pop(term, None)

    @staticmethod
    def _restore_postings(working: dict, frozen: dict, term: str) -> None:
        committed = frozen.get(term)
        if committed is not None:
            working[term] = set(committed)
        else:
            working.pop(term, None)

    # ------------------------------------------------------------------
    # view construction (lock held by callers)
    # ------------------------------------------------------------------
    def _build_view(self) -> OverlayGraph:
        return OverlayGraph(
            self._base_graph,
            out_over=self._frozen_out,
            in_over=self._frozen_in,
            labels_ext=self._labels_ext,
            tables_ext=self._tables_ext,
            refs_ext=self._refs_ext,
            prestige_base=self._prestige_base,
            prestige_ext=self._prestige_ext,
            num_forward_edges=self._fwd_count,
            num_edges=self._edge_count,
            out_invw_over=self._out_invw,
            in_invw_over=self._in_invw,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutableDataset(version={self.version}, "
            f"nodes={self._base_n + len(self._labels_ext)}, "
            f"forward_edges={self._fwd_count})"
        )
