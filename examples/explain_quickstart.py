"""Quickstart for query explain plans and per-query accounting.

Answers the two questions an operator actually asks:

* **"Why did this query return these answers, and why was it slow?"**
  — run with ``explain=True`` and read the structured report: how each
  keyword resolved to seed nodes (posting sizes decide backward-search
  fan-in), how the expansion frontier grew and when the bidirectional
  scheduler switched directions, and the full score decomposition of
  every released answer against the paper's Section 2.3 formula
  ``node_score**lambda / (1 + edge_score)``;
* **"What is this service actually serving?"** — every request is
  folded into a heavy-hitter sketch keyed by canonical fingerprint
  (sorted terms + algorithm + params digest), carrying count, latency
  and engine cost totals.  The top of that sketch is the workload.

Run:  python examples/explain_quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import QueryRequest, QueryService
from repro.core.engine import KeywordSearchEngine
from repro.datasets import DblpConfig, make_dblp

QUERIES = [
    "paper stream",
    "stream paper",  # same fingerprint: term order is folded away
    "graph query",
    "paper query stream",
]


def render_report(report: dict) -> str:
    """A human-readable rendering of one explain report."""
    canonical = report["canonical"]
    lines = [
        f"algorithm : {canonical['algorithm']}",
        f"keywords  : {', '.join(canonical['keywords'])}",
        "seeds     :",
    ]
    for seed in canonical["seeds"]:
        lines.append(
            f"  {seed['keyword']!r:14s} -> {seed['origin_count']} origin "
            f"nodes (sample {seed['origin_sample'][:4]})"
        )
    lines.append("answers   :")
    for answer in canonical["answers"]:
        decomposition = answer["decomposition"]
        lines.append(
            f"  #{answer['rank']} root={answer['root']} "
            f"score={answer['score']:.4f}  "
            f"[{decomposition['formula']}: N={answer['node_score']:.3f}"
            f"^{decomposition['lambda']:g}, E={answer['edge_score']:.3f}]"
        )
        for path in decomposition["paths"]:
            lines.append(
                f"      {path['keyword']!r}: path {path['path']} "
                f"(weight {path['dist']:.3f})"
            )
    switches = [
        event for event in report["timeline"] if event.get("event") == "switch"
    ]
    if switches:
        lines.append(f"frontier  : {len(switches)} direction switches, first "
                     f"at pop {switches[0]['pops']} (rule "
                     f"{switches[0].get('rule')})")
    costs = report["costs"]
    lines.append(
        f"costs     : pops {costs['pops_in']}+{costs['pops_out']} (in+out), "
        f"{costs['heap_ops']} heap ops, {costs['cascade_touches']} cascade "
        f"touches, {costs['emit_attempts']} emit attempts"
    )
    lines.append(f"elapsed   : {report['timings']['elapsed'] * 1000:.1f} ms")
    return "\n".join(lines)


def main() -> None:
    engine = KeywordSearchEngine.from_database(
        make_dblp(DblpConfig().scaled(0.25))
    )
    with QueryService(slow_query_threshold=None) as service:
        service.register_engine("dblp", engine)

        # --- the explain plan -----------------------------------------
        response = service.search(
            QueryRequest(
                dataset="dblp",
                query="paper stream",
                k=3,
                explain=True,
                request_id="quickstart-1",
            )
        )
        response.raise_for_error()
        report = response.result.explain
        print("=== explain: 'paper stream' (k=3) ===")
        print(render_report(report))

        # The report is retained server-side, keyed by request id —
        # what GET /debug/explain/<id> serves on the HTTP tier.
        assert service.explain("quickstart-1") is not None

        # --- the workload view ----------------------------------------
        for query in QUERIES * 3:
            service.search(
                QueryRequest(dataset="dblp", query=query, k=3, use_cache=False)
            ).raise_for_error()

        print("\n=== top 5 expensive fingerprints (/debug/queries) ===")
        stats = service.query_stats()
        print(f"{stats['total']} queries sketched")
        for entry in stats["entries"][:5]:
            costs = entry["costs"]
            pops = costs.get("pops_in", 0) + costs.get("pops_out", 0)
            print(
                f"  {entry['key']:50s} x{entry['count']:<4d} "
                f"{entry['elapsed_total'] * 1000:7.1f} ms total, "
                f"{pops} pops"
            )


if __name__ == "__main__":
    main()
