"""Exhaustive answer enumeration — the correctness oracle (S13).

For small graphs we can afford what the paper's algorithms avoid:
examine the whole graph.  One multi-source Dijkstra per keyword over the
reversed search graph yields, for *every* node, the true shortest path
down to that keyword; every node reaching all keywords then roots its
best answer tree.  The result — all minimal answer trees, deduplicated
by rotation, best score first — is the ground truth that unit,
integration and property tests compare the search algorithms against,
and that the workload generator uses for relevance judgments
(paper Section 5.4's "SQL queries to find relevant answers").
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Optional, Sequence

from repro.core.answer import AnswerTree, is_minimal_rooting
from repro.core.cancellation import CancellationToken
from repro.core.scoring import Scorer
from repro.core.ties import tight_decomposition
from repro.errors import SearchCancelledError

__all__ = ["keyword_distances", "exhaustive_answers"]


def _tick_or_raise(token: Optional[CancellationToken]) -> None:
    """The oracle's cooperative check: no anytime semantics here — a
    half-enumerated ground truth is worthless — so a fired token
    unwinds with :class:`SearchCancelledError` instead of returning a
    partial result."""
    if token is not None and token.tick():
        raise SearchCancelledError(token.reason or "cancelled")


def keyword_distances(
    graph, targets: frozenset[int], *, token: Optional[CancellationToken] = None
) -> tuple[dict[int, float], dict[int, tuple[int, float]]]:
    """Shortest distance from every node *down to* any node in ``targets``.

    Runs a multi-source Dijkstra over the reversed search graph.
    Returns ``(dist, sp)`` where ``sp[u] = (child, edge weight)`` is the
    first hop of ``u``'s best path (absent for the targets themselves).
    """
    dist: dict[int, float] = {node: 0.0 for node in targets}
    sp: dict[int, tuple[int, float]] = {}
    heap: list[tuple[float, int]] = [(0.0, node) for node in sorted(targets)]
    heapq.heapify(heap)
    while heap:
        _tick_or_raise(token)
        d, x = heapq.heappop(heap)
        if d > dist.get(x, inf):
            continue
        for u, w, _ in graph.in_edges(x):
            nd = d + w
            if nd < dist.get(u, inf):
                dist[u] = nd
                sp[u] = (x, w)
                heapq.heappush(heap, (nd, u))
    return dist, sp




def exhaustive_answers(
    graph,
    keyword_sets: Sequence[frozenset[int]],
    scorer: Optional[Scorer] = None,
    *,
    max_results: Optional[int] = None,
    max_edge_score: Optional[float] = None,
    token: Optional[CancellationToken] = None,
) -> list[AnswerTree]:
    """All minimal answer trees, best (shortest-path-per-keyword) per
    root, rotations deduplicated, sorted by descending score.

    ``max_edge_score`` optionally drops trees with ``E`` above a cap —
    the workload generator's notion of "relevant answers up to the
    planted size".
    """
    if scorer is None:
        scorer = Scorer(graph)
    per_keyword = [
        keyword_distances(graph, targets, token=token) for targets in keyword_sets
    ]

    dist_maps = [table[0] for table in per_keyword]

    def dist_fn(node: int, i: int) -> float:
        return dist_maps[i].get(node, inf)

    best: dict[object, AnswerTree] = {}
    for root in graph.nodes():
        _tick_or_raise(token)
        vectors = [dist_map.get(root) for dist_map in dist_maps]
        if any(d is None for d in vectors):
            continue
        # The *canonical* equal-cost decomposition (repro.core.ties),
        # not the Dijkstra sp pointers: under shortest-path ties the sp
        # choice is a heap-order accident, while the canonical rule is
        # reproducible from distances alone — the searches emit exactly
        # this decomposition for tied roots, making strict oracle
        # coverage a sound requirement.
        decomposition = tight_decomposition(graph, dist_fn, root, len(per_keyword))
        if decomposition is None:  # pragma: no cover - defensive
            continue
        paths, dists = decomposition
        if not is_minimal_rooting(root, paths):
            continue
        tree = scorer.build_tree(root, paths, dists)
        if max_edge_score is not None and tree.edge_score > max_edge_score:
            continue
        signature = tree.signature()
        existing = best.get(signature)
        if existing is None or tree.score > existing.score:
            best[signature] = tree

    answers = sorted(best.values(), key=lambda t: (-t.score, t.root))
    if max_results is not None:
        answers = answers[:max_results]
    return answers
