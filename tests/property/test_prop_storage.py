"""Property: the mapped storage tier is bit-identical to RAM.

For hypothesis-generated graphs and keyword sets, a snapshot loaded
through ``storage_mode="mapped"`` must produce exactly the answers —
same scores, same tree signatures, same order — as the same snapshot
loaded into RAM, for all three algorithms and every expansion backend.
Storage tiers change residency and warmup cost, never results.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backward_mi import BackwardExpandingSearch
from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.params import SearchParams
from repro.index.inverted import InvertedIndex
from repro.service.snapshot import load_snapshot, save_snapshot
from repro.storage import MappedSearchGraph, PinPolicy

from tests.property.test_prop_search import build_graph_from, search_cases

ALGORITHMS = (
    BidirectionalSearch,
    SingleIteratorBackwardSearch,
    BackwardExpandingSearch,
)
BACKENDS = ("python", "scalar", "vectorized")
PARAMS = SearchParams(max_results=50, dmax=20, max_combos_per_node=64)


def build_index(keyword_sets) -> InvertedIndex:
    index = InvertedIndex()
    for i, nodes in enumerate(keyword_sets):
        for node in nodes:
            index.add_term(node, f"k{i}")
    return index


@pytest.mark.parametrize("fmt", ["compressed", "mapped"])
@given(case=search_cases())
@settings(max_examples=15, deadline=None)
def test_mapped_answers_bit_identical_to_ram(fmt, case):
    n, edges, keyword_sets = case
    graph = build_graph_from(n, edges)
    index = build_index(keyword_sets)
    keywords = tuple(f"k{i}" for i in range(len(keyword_sets)))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "case.snap"
        save_snapshot(path, graph, index, format=fmt)
        ram_graph, ram_index = load_snapshot(path, storage_mode="ram")
        map_graph, map_index = load_snapshot(
            path, storage_mode="mapped", pin_policy=PinPolicy(nodes=2, terms=1)
        )
        assert isinstance(map_graph, MappedSearchGraph)
        assert not isinstance(ram_graph, MappedSearchGraph)

        ram_sets = [ram_index.lookup(kw) for kw in keywords]
        map_sets = [map_index.lookup(kw) for kw in keywords]
        assert ram_sets == map_sets

        for cls in ALGORITHMS:
            for backend in BACKENDS:
                params = PARAMS.with_(expansion_backend=backend)
                a = cls(ram_graph, keywords, ram_sets, params=params).run()
                b = cls(map_graph, keywords, map_sets, params=params).run()
                assert b.scores() == a.scores(), (cls.__name__, backend)
                assert b.signatures() == a.signatures(), (cls.__name__, backend)
