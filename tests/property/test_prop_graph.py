"""Property tests: search-graph construction invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DataGraph


@st.composite
def edge_lists(draw, max_nodes=12, max_edges=30):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.1, max_value=9.0, allow_nan=False),
            ),
            min_size=1,
            max_size=max_edges,
        ).map(lambda es: [(u, v, w) for u, v, w in es if u != v])
    )
    return n, edges


def build(n, edges):
    g = DataGraph()
    for i in range(n):
        g.add_node(f"n{i}")
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_every_forward_edge_has_backward_twin(case):
    n, edges = case
    dg = build(n, edges)
    indegree = [dg.indegree(i) for i in range(n)]
    sg = dg.freeze()
    assert sg.num_edges == 2 * len(edges)
    # Collect multisets of (src, dst, weight, forward).
    forward = sorted(
        (u, v, round(w, 9))
        for u in sg.nodes()
        for v, w, fwd in sg.out_edges(u)
        if fwd
    )
    assert forward == sorted((u, v, round(w, 9)) for u, v, w in edges)
    backward = sorted(
        (u, v, round(w, 9))
        for u in sg.nodes()
        for v, w, fwd in sg.out_edges(u)
        if not fwd
    )
    expected = sorted(
        (v, u, round(w * math.log2(1 + indegree[v]), 9)) for u, v, w in edges
    )
    assert backward == expected


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_in_edges_are_transpose_of_out_edges(case):
    n, edges = case
    sg = build(n, edges).freeze()
    outs = sorted(
        (u, v, w, fwd) for u in sg.nodes() for v, w, fwd in sg.out_edges(u)
    )
    ins = sorted(
        (u, v, w, fwd) for v in sg.nodes() for u, w, fwd in sg.in_edges(v)
    )
    assert outs == ins


@given(edge_lists())
@settings(max_examples=50, deadline=None)
def test_csr_matches_adjacency_and_formula(case):
    n, edges = case
    sg = build(n, edges).freeze()
    arrays = sg.csr_arrays()
    assert arrays["indptr"][-1] == sg.num_edges
    assert sg.compact_nbytes() == 16 * sg.num_nodes + 8 * sg.num_edges + 8
    for u in sg.nodes():
        lo, hi = arrays["indptr"][u], arrays["indptr"][u + 1]
        assert hi - lo == sg.out_degree(u)


@given(edge_lists())
@settings(max_examples=50, deadline=None)
def test_inverse_weight_sums_positive_where_edges_exist(case):
    n, edges = case
    sg = build(n, edges).freeze()
    for v in sg.nodes():
        if sg.in_degree(v):
            assert sg.in_inv_weight_sum(v) > 0.0
        else:
            assert sg.in_inv_weight_sum(v) == 0.0
