"""Quickstart for the process-pool sharding tier (:mod:`repro.cluster`).

The multi-core deployment story, end to end:

1. build an engine once and snapshot it to disk — the only expensive
   step, paid one time,
2. spin up a :class:`repro.ShardedQueryService`: worker processes warm
   from the snapshot (disk load, no ``from_database``), the dataset
   replicated across both workers so queries fan out,
3. run a mixed batch through ``search_many`` — same facade as the
   thread tier, but CPU time divides across cores,
4. serve the fleet over HTTP (stdlib only) and hit ``/search``,
   ``/metrics`` and ``/healthz`` like an external client would,
5. export the merged cluster metrics dict.

Run:  python examples/cluster_quickstart.py
"""

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro import KeywordSearchEngine, ShardedQueryService
from repro.cluster.http import make_server
from repro.datasets import DblpConfig, make_dblp
from repro.service.snapshot import save_engine

QUERIES = [
    ("paper stream", "bidirectional"),
    ("paper stream", "mi-backward"),
    ("graph query", "si-backward"),
    ("graph query", "bidirectional"),
]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # --------------------------------------------------------------
        # 1. build once, snapshot to disk
        # --------------------------------------------------------------
        start = time.perf_counter()
        engine = KeywordSearchEngine.from_database(make_dblp(DblpConfig()))
        build_s = time.perf_counter() - start
        snapshot = save_engine(Path(tmp) / "dblp.snap", engine)
        print(
            f"built engine in {build_s * 1000:.0f} ms, snapshot "
            f"{snapshot.stat().st_size / 1024:.0f} KiB"
        )

        # --------------------------------------------------------------
        # 2. two snapshot-warmed workers, dataset replicated over both
        # --------------------------------------------------------------
        with ShardedQueryService(
            {"dblp": snapshot}, num_workers=2, default_replicas=2
        ) as cluster:
            timings = cluster.warmup()
            print(
                f"fleet warm: {cluster.health()['alive']} workers, slowest "
                f"snapshot load {timings['dblp'] * 1000:.0f} ms "
                f"(vs {build_s * 1000:.0f} ms from_database)"
            )

            # ----------------------------------------------------------
            # 3. a batch over the fleet, checked against the local engine
            # ----------------------------------------------------------
            requests = [
                ("dblp", query, algorithm) for query, algorithm in QUERIES
            ] * 3
            responses = cluster.search_many(requests)
            agree = all(
                response.ok
                and response.result.scores()
                == engine.search(
                    response.request.query, algorithm=response.request.algorithm
                ).scores()
                for response in responses
            )
            print(
                f"search_many: {len(responses)} responses across the fleet, "
                f"all match the local engine: {agree}"
            )

            # ----------------------------------------------------------
            # 4. the same fleet over HTTP
            # ----------------------------------------------------------
            server = make_server(cluster)
            host, port = server.server_address[:2]
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            body = json.dumps(
                {"dataset": "dblp", "query": "paper stream", "k": 3}
            ).encode("utf-8")
            http_request = urllib.request.Request(
                f"http://{host}:{port}/search",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(http_request) as http_response:
                answer = json.loads(http_response.read())
                print(
                    f"HTTP /search: {http_response.status}, "
                    f"{len(answer['result']['answers'])} answers, "
                    f"cached={answer['cached']}"
                )
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as hz:
                print(f"HTTP /healthz: {json.loads(hz.read())}")
            server.shutdown()
            server.server_close()

            # ----------------------------------------------------------
            # 5. one merged metrics dict for the whole fleet
            # ----------------------------------------------------------
            metrics = cluster.metrics()
            print(
                "cluster metrics: "
                f"requests={metrics['requests_total']}, "
                f"errors={metrics['errors_total']}, "
                f"alive={metrics['cluster']['alive']}/"
                f"{metrics['cluster']['workers']}, "
                f"assignments={metrics['cluster']['assignments']}"
            )


if __name__ == "__main__":
    main()
