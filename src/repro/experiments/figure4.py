"""FIG4: the paper's Figure 4 worked example.

Builds the example graph — 100 papers matching ``database``, James with
a single paper, John with 49 papers, one co-authored paper — and counts
nodes explored/touched until the co-authorship answer is *generated* by
each algorithm.  The paper (with unit prestige, which we replicate)
reports Backward exploring >= ~151 nodes and touching ~250, versus
Bidirectional exploring ~4 and touching ~150.
"""

from __future__ import annotations

from repro.core.engine import KeywordSearchEngine
from repro.core.params import SearchParams
from repro.experiments.common import Report, fmt
from repro.graph.digraph import DataGraph
from repro.index.inverted import InvertedIndex

__all__ = ["build_figure4_engine", "run_figure4"]

#: Counts quoted in paper Section 4.4 for orientation in the report.
PAPER_NUMBERS = {
    "backward": {"explored": 151, "touched": 250},
    "bidirectional": {"explored": 4, "touched": 150},
}


def build_figure4_engine(
    *, n_papers: int = 100, john_papers: int = 49
) -> tuple[KeywordSearchEngine, dict[str, object]]:
    """The Figure 4 graph with unit (uniform) prestige.

    John's ``john_papers`` papers are the last ones; the final paper is
    co-authored with James and is the intended answer root.
    """
    graph = DataGraph()
    papers = [
        graph.add_node(f"paper{i + 1}", table="paper") for i in range(n_papers)
    ]
    james = graph.add_node("James", table="author")
    john = graph.add_node("John", table="author")
    co_paper = papers[-1]

    writes_james = graph.add_node("writes:james", table="writes")
    graph.add_edge(writes_james, james)
    graph.add_edge(writes_james, co_paper)

    john_targets = papers[n_papers - john_papers :]
    for paper in john_targets:
        writes = graph.add_node(f"writes:john->{graph.label(paper)}", table="writes")
        graph.add_edge(writes, john)
        graph.add_edge(writes, paper)

    # Paper Section 4.4: "For simplicity lets assume all node prestiges
    # ... to be unity" -> keep the uniform prestige freeze() provides.
    search_graph = graph.freeze()
    index = InvertedIndex()
    for paper in papers:
        index.add_text(paper, "database")
    index.add_text(james, "james")
    index.add_text(john, "john")

    engine = KeywordSearchEngine(
        search_graph, index, params=SearchParams(max_results=1)
    )
    meta = {"co_paper": co_paper, "james": james, "john": john}
    return engine, meta


def run_figure4() -> Report:
    engine, meta = build_figure4_engine()
    report = Report(
        experiment="FIG4",
        title="Figure 4 worked example (database james john)",
        headers=[
            "algorithm",
            "explored@gen",
            "touched@gen",
            "explored(total)",
            "touched(total)",
            "answer found",
        ],
    )
    expected_nodes = None
    for algorithm in ("bidirectional", "si-backward", "mi-backward"):
        result = engine.search("database james john", algorithm=algorithm)
        best = result.best()
        found = best is not None and meta["co_paper"] in best.tree.nodes()
        if expected_nodes is None and best is not None:
            expected_nodes = sorted(best.tree.nodes())
        report.rows.append(
            [
                algorithm,
                fmt(best.generated_pops if best else None),
                fmt(best.generated_touched if best else None),
                fmt(result.stats.nodes_explored),
                fmt(result.stats.nodes_touched),
                str(found),
            ]
        )
    report.notes.append(
        "paper (unit prestige): Backward explores >=151 / touches ~250; "
        "Bidirectional explores ~4 / touches ~150 before generating the result"
    )
    return report
