"""In-process sampling profiler: folded stacks from ``sys._current_frames``.

A stdlib-only, always-on statistical profiler.  A background daemon
thread wakes every ``interval`` seconds, snapshots every thread's
current frame via :func:`sys._current_frames`, folds each stack into a
``thread;file:func;file:func`` string, and bumps that stack's sample
count.  The aggregate is a plain ``{folded_stack: count}`` dict — the
`collapsed stack <https://github.com/brendangregg/FlameGraph>`_ format
every flamegraph tool eats directly.

Windowed profiles come from snapshot *diffs*: take counts at ``t0``,
sleep, take counts at ``t1``, subtract.  That is how
``GET /debug/profile?seconds=N`` works without ever pausing the
profiled process — crucial for cluster workers, whose control loop is
serial and must keep serving while being profiled.

Worker processes each run their own profiler; snapshots are plain
JSON-safe dicts, so they ride the existing pipe wire format to the
supervisor, which :func:`merge_profiles`-es them into one fleet-wide
view.

Overhead: sampling cost is ``O(threads × frames)`` per tick, amortised
by a per-code-object fold cache, and is budget-enforced by
``benchmarks/bench_telemetry_overhead.py`` (<3% QPS at the default
rate).
"""

from __future__ import annotations

import os.path
import sys
import threading
import time
from typing import Any, Iterable, Mapping

__all__ = [
    "SamplingProfiler",
    "diff_profiles",
    "merge_profiles",
    "render_collapsed",
]

#: Default sampling period in seconds (50 Hz): fine enough to attribute
#: CPU inside a multi-millisecond search, cheap enough to leave on.
DEFAULT_INTERVAL = 0.02

#: Distinct stacks tracked before new ones fold into ``(other)``.
DEFAULT_MAX_STACKS = 4096

#: Frames walked per stack before truncating with a ``(deep)`` marker.
_MAX_DEPTH = 64


class SamplingProfiler:
    """Continuous background sampler producing collapsed-stack counts.

    Thread-safe; designed to run for the life of the process.  Use
    :meth:`snapshot` to read cumulative counts and diff two snapshots
    (via :func:`diff_profiles`) for a windowed profile.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        *,
        max_stacks: int = DEFAULT_MAX_STACKS,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = interval
        self.max_stacks = max_stacks
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._total = 0
        self._started_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Fold cache: tuple of frame code-object ids -> folded string.
        # Function-level granularity keeps keys stable across samples,
        # so steady-state sampling costs a dict lookup, not N string
        # formats.
        self._fold_cache: dict[tuple[int, ...], str] = {}

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            if self._started_at is None:
                self._started_at = time.time()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 1.0) -> None:
        """Stop sampling; accumulated counts remain readable."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------
    # Sampling

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            try:
                self.sample_once(exclude={own_id})
            except Exception:
                # A profiler must never take the process down; skip the
                # tick and keep sampling.
                continue

    def sample_once(self, exclude: set[int] | None = None) -> int:
        """Take one sample of every live thread; returns stacks folded.

        Exposed for deterministic tests — production sampling goes
        through the background thread.
        """
        frames = sys._current_frames()
        folded: list[str] = []
        names = {
            thread.ident: thread.name
            for thread in threading.enumerate()
            if thread.ident is not None
        }
        for ident, frame in frames.items():
            if exclude and ident in exclude:
                continue
            folded.append(self._fold(names.get(ident, f"thread-{ident}"), frame))
        del frames
        with self._lock:
            for stack in folded:
                if stack in self._counts or len(self._counts) < self.max_stacks:
                    self._counts[stack] = self._counts.get(stack, 0) + 1
                else:
                    self._counts["(other)"] = self._counts.get("(other)", 0) + 1
                self._total += 1
        return len(folded)

    def _fold(self, thread_name: str, frame: Any) -> str:
        codes: list[int] = []
        walker = frame
        depth = 0
        while walker is not None and depth < _MAX_DEPTH:
            codes.append(id(walker.f_code))
            walker = walker.f_back
            depth += 1
        truncated = walker is not None
        key = tuple(codes)
        cached = self._fold_cache.get(key)
        if cached is not None and not truncated:
            return f"{thread_name};{cached}"
        parts: list[str] = []
        walker = frame
        depth = 0
        while walker is not None and depth < _MAX_DEPTH:
            code = walker.f_code
            parts.append(f"{os.path.basename(code.co_filename)}:{code.co_name}")
            walker = walker.f_back
            depth += 1
        parts.reverse()  # root first, leaf last — flamegraph order
        if truncated:
            parts.insert(0, "(deep)")
        stack = ";".join(parts)
        if not truncated:
            if len(self._fold_cache) > self.max_stacks:
                self._fold_cache.clear()
            self._fold_cache[key] = stack
        return f"{thread_name};{stack}"

    # ------------------------------------------------------------------
    # Reading

    def snapshot(self) -> dict[str, Any]:
        """Cumulative counts since start, as a JSON-safe dict."""
        with self._lock:
            return {
                "samples": dict(self._counts),
                "total": self._total,
                "interval": self.interval,
                "started_at": self._started_at,
                "at": time.time(),
            }


def diff_profiles(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """The samples accumulated between two snapshots of one profiler."""
    base = before.get("samples") or {}
    now = after.get("samples") or {}
    samples = {}
    for stack, count in now.items():
        delta = count - base.get(stack, 0)
        if delta > 0:
            samples[stack] = delta
    return {
        "samples": samples,
        "total": max(0, (after.get("total") or 0) - (before.get("total") or 0)),
        "interval": after.get("interval"),
        "seconds": (after.get("at") or 0.0) - (before.get("at") or 0.0),
    }


def merge_profiles(parts: Iterable[Mapping[str, Any] | None]) -> dict[str, Any]:
    """Sum collapsed-stack counts across workers into one fleet view."""
    samples: dict[str, int] = {}
    total = 0
    interval = None
    for part in parts:
        if not part:
            continue
        for stack, count in (part.get("samples") or {}).items():
            samples[stack] = samples.get(stack, 0) + count
        total += part.get("total") or 0
        if interval is None:
            interval = part.get("interval")
    return {"samples": samples, "total": total, "interval": interval}


def render_collapsed(profile: Mapping[str, Any]) -> str:
    """Collapsed-stack text: one ``stack count`` line, hottest first.

    Feed straight to ``flamegraph.pl`` / speedscope / inferno.
    """
    samples = profile.get("samples") or {}
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(samples.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return "\n".join(lines)
