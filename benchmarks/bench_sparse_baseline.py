"""Sparse baseline micro-bench: CN enumeration + execution cost.

Supports the Figure 5 "Sparse does progressively worse as the number of
candidate networks increases" observation: executing CNs up to size 5
costs strictly more than up to size 3 on the same query.
"""

import time

from repro.experiments.common import build_bench, workload_rng
from repro.sparse.sparse_search import SparseSearch


def test_sparse_cost_grows_with_cn_size(benchmark):
    bench = build_bench("dblp", 0.4)
    rng = workload_rng(4242)
    query = bench.generator.sample_query(
        rng, n_keywords=2, result_size=3, band_combo=("T", "S")
    )
    assert query is not None
    sparse = SparseSearch(bench.db)

    def run():
        times = {}
        networks = {}
        for size in (2, 3, 4, 5):
            start = time.perf_counter()
            out = sparse.search(list(query.keywords), k=None, max_cn_size=size)
            times[size] = time.perf_counter() - start
            networks[size] = out.num_networks
        return times, networks

    times, networks = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"query: {query.keywords}")
    for size in (2, 3, 4, 5):
        print(f"  max CN size {size}: {networks[size]:4d} CNs  {times[size]:.3f}s")
    assert networks[5] >= networks[3] >= networks[2]
    assert times[5] >= times[2]
