"""Mutation wire types: round-trips, validation, batch aliases."""

import pytest

from repro.errors import MutationError
from repro.live.mutations import (
    AddEdge,
    AddNode,
    MutationResult,
    RemoveEdge,
    UpdateText,
    coerce_mutation,
    coerce_mutations,
    mutation_from_dict,
    mutation_to_dict,
)


ROUND_TRIP_CASES = [
    AddNode(),
    AddNode(label="A Paper", table="paper", ref=("paper", 7), text="A Paper"),
    AddNode(label="row", table="writes", ref=("writes", "w-9")),
    AddEdge(u=1, v=2),
    AddEdge(u=-1, v=4, weight=2.5),
    RemoveEdge(u=3, v=0),
    RemoveEdge(u=3, v=0, weight=2.0),
    UpdateText(node=5, text="renamed title"),
]


class TestWireRoundTrip:
    @pytest.mark.parametrize("mutation", ROUND_TRIP_CASES, ids=repr)
    def test_round_trip(self, mutation):
        wire = mutation_to_dict(mutation)
        assert mutation_from_dict(wire) == mutation

    @pytest.mark.parametrize("mutation", ROUND_TRIP_CASES, ids=repr)
    def test_wire_is_json_safe(self, mutation):
        import json

        json.dumps(mutation_to_dict(mutation))

    def test_ref_pk_type_survives(self):
        int_ref = mutation_to_dict(AddNode(ref=("paper", 7)))
        str_ref = mutation_to_dict(AddNode(ref=("paper", "7")))
        assert mutation_from_dict(int_ref).ref == ("paper", 7)
        assert mutation_from_dict(str_ref).ref == ("paper", "7")

    def test_coerce_accepts_both_shapes(self):
        prepared = AddEdge(u=1, v=2)
        assert coerce_mutation(prepared) is prepared
        assert coerce_mutation({"op": "add_edge", "u": 1, "v": 2}) == prepared
        batch = coerce_mutations([prepared, {"op": "update_text", "node": 1, "text": "x"}])
        assert batch == [prepared, UpdateText(node=1, text="x")]


class TestValidation:
    def test_unknown_op(self):
        with pytest.raises(MutationError, match="unknown mutation op"):
            mutation_from_dict({"op": "drop_table"})

    def test_unknown_field(self):
        with pytest.raises(MutationError, match="unknown fields"):
            mutation_from_dict({"op": "add_edge", "u": 1, "v": 2, "speed": 9})

    def test_missing_field(self):
        with pytest.raises(MutationError, match="malformed add_edge"):
            mutation_from_dict({"op": "add_edge", "u": 1})

    def test_not_a_mapping(self):
        with pytest.raises(MutationError, match="JSON object"):
            mutation_from_dict(["add_edge", 1, 2])

    def test_bad_weight(self):
        with pytest.raises(MutationError, match="weight"):
            AddEdge(u=1, v=2, weight=0.0)
        with pytest.raises(MutationError, match="weight"):
            AddEdge(u=1, v=2, weight="heavy")

    def test_bad_endpoint(self):
        with pytest.raises(MutationError, match="node id"):
            AddEdge(u="a", v=2)
        with pytest.raises(MutationError, match="node id"):
            UpdateText(node=True, text="x")

    def test_bad_ref(self):
        with pytest.raises(MutationError, match="ref"):
            AddNode(ref=("paper",))
        with pytest.raises(MutationError, match="primary key"):
            AddNode(ref=("paper", 1.5))

    def test_result_to_dict(self):
        result = MutationResult(
            dataset="d", version=3, applied=2, new_nodes=(9,), compacted=True
        )
        assert result.to_dict() == {
            "dataset": "d",
            "version": 3,
            "applied": 2,
            "new_nodes": [9],
            "compacted": True,
            "cache_purged": 0,
        }
