"""``ShardedQueryService``: the process-pool tier above ``QueryService``.

Same facade, different execution substrate: ``search`` / ``search_many``
/ ``metrics`` / ``warmup`` / context-manager semantics match
:class:`~repro.service.QueryService`, but requests are dispatched over
N worker *processes*, each holding a private snapshot-warmed
``QueryService`` — so a batch's pure-Python search time actually
divides across cores instead of serializing on one GIL (the ROADMAP's
first open item).

Everything crossing the process boundary is primitives: snapshot paths
at spawn time, request-shaped dicts out, response-shaped dicts back
(:mod:`repro.service.wire`).  Routing is deterministic
(:class:`~repro.cluster.router.ShardRouter`): a dataset lives on a
fixed replica set, and a given query always lands on the same replica —
which is also what makes each worker's private result cache effective.

Failure semantics extend the service contract across processes:

* a malformed request or unroutable dataset is answered supervisor-side
  as a structured error response;
* a deadline miss is answered supervisor-side
  (``error_type="DeadlineExceededError"``) while the worker finishes in
  the background, exactly like the thread tier;
* a worker crash turns its in-flight requests into
  ``error_type="WorkerCrashedError"`` responses and the pool restarts
  the worker — callers never hang, and the *next* batch is served.

Supervisor-side events (deadline misses, malformed requests, crashes)
are recorded in a local :class:`~repro.service.metrics.ServiceMetrics`;
:meth:`metrics` merges it with every worker's export into one cluster
view (:func:`~repro.cluster.metrics.merge_metrics`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Mapping, Optional, Sequence, Union

from repro.core.engine import parse_query
from repro.core.params import SearchParams
from repro.errors import (
    DeadlineExceededError,
    PoolClosedError,
    WorkerCrashedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.service import (
    QueryRequest,
    QueryResponse,
    coerce_request,
    normalize_search_args,
)
from repro.service.wire import request_to_dict, response_from_dict
from repro.cluster.metrics import merge_metrics
from repro.cluster.pool import WorkerPool, control_error
from repro.cluster.router import ShardRouter

__all__ = ["ShardedQueryService"]


class ShardedQueryService:
    """Facade owning a shard router, a worker pool and merged metrics.

    Parameters
    ----------
    snapshots:
        ``{dataset_name: snapshot_path}`` — every dataset a worker may
        serve must exist as a snapshot file
        (:func:`repro.service.snapshot.save_engine`); workers load from
        disk, ``from_database`` never runs in the fleet.
    num_workers:
        Process count (default: the machine's CPU count).
    default_replicas / replicas:
        Replica fan-out per dataset (see :class:`ShardRouter`).  A
        single hot dataset on an 8-core box wants
        ``default_replicas=8``.
    cache_capacity / cache_ttl:
        Per-worker result-cache knobs.
    start_method:
        Worker start method (default ``"spawn"``; see ``WorkerPool``).
    restart:
        Restart-on-crash policy, on by default.
    """

    def __init__(
        self,
        snapshots: Mapping[str, os.PathLike],
        *,
        num_workers: Optional[int] = None,
        default_replicas: int = 1,
        replicas: Optional[Mapping[str, int]] = None,
        cache_capacity: int = 1024,
        cache_ttl: Optional[float] = None,
        metrics_window: int = 2048,
        start_method: Optional[str] = "spawn",
        health_interval: float = 0.5,
        restart: bool = True,
    ) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        self.router = ShardRouter(
            list(snapshots),
            num_workers,
            default_replicas=default_replicas,
            replicas=replicas,
        )
        paths = {name: str(path) for name, path in snapshots.items()}
        specs = {
            worker_id: {name: paths[name] for name in names}
            for worker_id, names in self.router.assignments().items()
        }
        self.pool = WorkerPool(
            specs,
            settings={"cache_capacity": cache_capacity, "cache_ttl": cache_ttl},
            start_method=start_method,
            health_interval=health_interval,
            restart=restart,
        )
        self._local_metrics = ServiceMetrics(metrics_window)

    # ------------------------------------------------------------------
    # registry view
    # ------------------------------------------------------------------
    def datasets(self) -> list[str]:
        """Dataset names the cluster serves, sorted."""
        return self.router.datasets()

    def warmup(self, names: Optional[Sequence[str]] = None) -> dict[str, float]:
        """Build every shard's engines from disk now.

        Returns ``{dataset: build_seconds}``, reporting each dataset's
        *slowest* replica — the one that gates fleet readiness.
        """
        wanted = set(names) if names is not None else None
        futures: dict[int, Future] = {}
        for worker_id, assigned in self.router.assignments().items():
            targets = (
                list(assigned)
                if wanted is None
                else [name for name in assigned if name in wanted]
            )
            if not targets:
                continue
            futures[worker_id] = self.pool.submit(worker_id, "warmup", targets)
        timings: dict[str, float] = {}
        for future in futures.values():
            payload = future.result()
            error = control_error(payload)
            if error is not None:
                # e.g. a SnapshotError warming from a corrupt file —
                # re-raised here with its original type where possible.
                raise error
            for name, seconds in payload.items():
                timings[name] = max(timings.get(name, 0.0), seconds)
        return timings

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def search(
        self,
        dataset: Union[str, QueryRequest],
        query: Optional[Union[str, Sequence[str]]] = None,
        *,
        algorithm: str = "bidirectional",
        k: Optional[int] = None,
        params: Optional[SearchParams] = None,
        timeout: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResponse:
        """Execute one query on its shard (same signature and dual
        calling convention as :meth:`QueryService.search`)."""
        request = normalize_search_args(
            dataset,
            query,
            algorithm=algorithm,
            k=k,
            params=params,
            timeout=timeout,
            use_cache=use_cache,
        )
        dispatched = self._dispatch(request)
        if isinstance(dispatched, QueryResponse):
            return dispatched
        deadline = (
            time.monotonic() + request.timeout
            if request.timeout is not None
            else None
        )
        return self._await(request, dispatched, deadline)

    def search_many(
        self,
        requests: Sequence[Union[QueryRequest, tuple]],
        *,
        timeout: Optional[float] = None,
    ) -> list[QueryResponse]:
        """Execute a batch across the fleet; responses in request order.

        The whole batch is dispatched before any response is awaited,
        so shards run concurrently — this is the call whose CPU time
        finally spreads over cores.  Per-item failures (malformed item,
        unknown dataset, absent keyword, crash, deadline) come back as
        structured error responses in their slots, never exceptions.
        """
        prepared: list[Union[QueryRequest, QueryResponse]] = []
        for raw in requests:
            try:
                prepared.append(coerce_request(raw, default_timeout=timeout))
            except Exception as exc:
                prepared.append(self._malformed_response(exc))
        submitted = time.monotonic()
        dispatched = [
            self._dispatch(item) if isinstance(item, QueryRequest) else item
            for item in prepared
        ]
        responses: list[QueryResponse] = []
        for item, outcome in zip(prepared, dispatched):
            if isinstance(outcome, QueryResponse):
                responses.append(outcome)
                continue
            deadline = (
                submitted + item.timeout if item.timeout is not None else None
            )
            responses.append(self._await(item, outcome, deadline))
        return responses

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def metrics(self, *, include_samples: bool = False) -> dict:
        """One cluster-wide metrics dict.

        Worker exports (latency reservoirs included, so percentiles are
        exact) are merged with the supervisor's own counters; a
        ``cluster`` section adds fleet state — per-worker liveness,
        restart counts and shard assignments.

        Known divergence from the thread tier: a deadline-missed
        request is recorded twice — once here as a supervisor-side
        ``DeadlineExceededError`` and once by the worker when the
        abandoned search eventually completes.  The thread tier's
        exactly-once claim needs shared memory; across processes the
        honest choice is counting both sides rather than hiding either.
        """
        per_worker = self.pool.metrics()
        parts = list(per_worker.values())
        parts.append(self._local_metrics.export(include_samples=True))
        merged = merge_metrics(parts)
        if not include_samples:
            for entry in merged.get("algorithms", {}).values():
                entry.pop("latency_samples", None)
        alive = self.pool.alive()
        merged["cluster"] = {
            "workers": self.router.num_workers,
            "alive": sum(alive.values()),
            "restarts": {str(w): n for w, n in sorted(self.pool.restarts().items())},
            "assignments": {
                str(w): list(names)
                for w, names in sorted(self.router.assignments().items())
            },
            "per_worker": {
                str(w): {
                    "requests_total": metrics.get("requests_total", 0),
                    "errors_total": metrics.get("errors_total", 0),
                }
                for w, metrics in sorted(per_worker.items())
            },
        }
        return merged

    def reset_metrics(self) -> None:
        self._local_metrics.reset()

    def health(self) -> dict:
        """Fleet liveness summary for a health endpoint."""
        alive = self.pool.alive()
        return {
            "workers": self.router.num_workers,
            "alive": sum(alive.values()),
            "restarts": sum(self.pool.restarts().values()),
            "datasets": self.datasets(),
        }

    def close(self, timeout: float = 10.0) -> None:
        """Drain and stop the worker fleet (idempotent)."""
        self.pool.close(timeout)

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(
        self, request: QueryRequest
    ) -> Union[Future, QueryResponse]:
        """Route and ship one request; supervisor-side failures (bad
        query, unknown dataset) come back as an immediate response."""
        start = time.perf_counter()
        try:
            keywords = parse_query(request.query)
            worker_id = self.router.route(
                request.dataset, (keywords, request.algorithm)
            )
        except Exception as exc:
            self._local_metrics.record_error(request.algorithm, type(exc).__name__)
            return QueryResponse(
                request=request,
                error=str(exc),
                error_type=type(exc).__name__,
                elapsed=time.perf_counter() - start,
                exception=exc,
            )
        wire_request = request_to_dict(request)
        # The supervisor owns the deadline; the worker runs to completion.
        wire_request["timeout"] = None
        try:
            return self.pool.request(worker_id, wire_request)
        except PoolClosedError:
            raise  # caller bug, like searching a closed QueryService
        except Exception as exc:
            # e.g. WorkerCrashedError with restarts disabled: the shard
            # is gone, which is an answer, not an exception.
            self._local_metrics.record_error(request.algorithm, type(exc).__name__)
            return QueryResponse(
                request=request,
                error=str(exc),
                error_type=type(exc).__name__,
                elapsed=time.perf_counter() - start,
                exception=exc,
            )

    def _await(
        self,
        request: QueryRequest,
        future: Future,
        deadline: Optional[float],
    ) -> QueryResponse:
        try:
            if deadline is None:
                payload = future.result()
            else:
                payload = future.result(
                    timeout=max(deadline - time.monotonic(), 0.0)
                )
        except FutureTimeoutError:
            self._local_metrics.record_error(
                request.algorithm, DeadlineExceededError.__name__
            )
            return QueryResponse(
                request=request,
                error=(
                    f"deadline of {request.timeout}s exceeded "
                    f"(the shard worker keeps running it in the background)"
                ),
                error_type=DeadlineExceededError.__name__,
                elapsed=request.timeout or 0.0,
            )
        response = response_from_dict(payload)
        # Hand the caller back the exact object it submitted (the wire
        # copy lost nothing, but identity is friendlier than equality).
        response.request = request
        if response.error_type == WorkerCrashedError.__name__:
            # Worker-side errors are counted by the worker; a crash is
            # the one failure only the supervisor can account for.
            self._local_metrics.record_error(
                request.algorithm, WorkerCrashedError.__name__
            )
            response.exception = WorkerCrashedError(response.error)
        return response

    def _malformed_response(self, exc: Exception) -> QueryResponse:
        self._local_metrics.record_error("invalid-request", type(exc).__name__)
        return QueryResponse(
            request=None,
            error=str(exc),
            error_type=type(exc).__name__,
            exception=exc,
        )
