"""Performance-trend gate: compare bench rows against a committed baseline.

The benches emit one JSON row per (experiment, mode) when
``BENCH_JSON_OUT`` is set (see ``benchmarks/conftest.py``).  This tool
reads that JSONL, normalizes each row's QPS by a *calibration row*
measured in the same run, and compares the resulting machine-portable
ratios against ``benchmarks/baseline.json``:

* **calibration** — raw QPS depends on the box (CI runners drift by
  2-3x), so absolute numbers cannot gate anything.  Each run instead
  divides every row's QPS by the run's own calibration row (by
  default ``telemetry-overhead/untraced`` — a plain uncached search
  loop with all telemetry off).  The ratio "cached throughput is N x
  the untraced search rate *on this machine*" is stable across
  hardware; a >20% drop in it is a real relative regression, not a
  slower runner;
* **tolerance** — a row regresses when its normalized ratio falls more
  than ``tolerance`` (default 0.20) below the baseline's.  Faster is
  never an error (the report suggests a baseline refresh instead);
* **ratio gates** — the baseline may carry ``ratio_gates``: hard
  floors on the ratio of two rows *from the same run* (e.g. the
  vectorized expansion backend must stay >= 3x the python backend's
  QPS on the kernel bench).  Ratios of same-run rows need no
  calibration — the machine factor cancels — so these are absolute
  bars, not drift-tolerant comparisons, and they fail the run the
  moment an optimization rots;
* **history** — every run appends ``{commit, ts, rows}`` to a history
  file (default ``BENCH_history.json``, CI keeps it as an artifact) so
  trends are reconstructable without re-running old commits.

Usage::

    BENCH_JSON_OUT=rows.jsonl python benchmarks/bench_service_throughput.py
    BENCH_JSON_OUT=rows.jsonl python benchmarks/bench_telemetry_overhead.py
    python benchmarks/perf_trend.py --rows rows.jsonl --commit "$(git rev-parse HEAD)"

Exit status 1 on any regression; ``--update-baseline`` rewrites the
baseline from the current rows instead of gating (run it on the same
``REPRO_SCALE`` the CI job uses, then commit the file).
"""

import argparse
import json
import sys
import time
from pathlib import Path

#: Rows are compared per (experiment, mode); only rows carrying this
#: metric participate.
METRIC = "qps"

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_HISTORY = Path("BENCH_history.json")


def load_rows(path: Path) -> dict[tuple[str, str], float]:
    """JSONL -> ``{(experiment, mode): qps}`` (last row wins)."""
    rows: dict[tuple[str, str], float] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        experiment = row.get("experiment")
        mode = row.get("mode")
        value = row.get(METRIC)
        if experiment and mode and isinstance(value, (int, float)) and value > 0:
            rows[(str(experiment), str(mode))] = float(value)
    return rows


def normalize(
    rows: dict[tuple[str, str], float], calibration: tuple[str, str]
) -> dict[tuple[str, str], float]:
    """Divide every row by the calibration row's value."""
    cal = rows.get(calibration)
    if not cal:
        raise SystemExit(
            f"calibration row {'/'.join(calibration)} missing from the "
            f"bench output; did bench_telemetry_overhead run?"
        )
    return {key: value / cal for key, value in rows.items()}


def compare(
    current: dict[tuple[str, str], float],
    baseline: dict[tuple[str, str], float],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Returns (report lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    for key in sorted(baseline):
        name = "/".join(key)
        base = baseline[key]
        now = current.get(key)
        if now is None:
            regressions.append(f"{name}: row missing from this run")
            continue
        change = now / base - 1.0
        verdict = "ok"
        if change < -tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}: normalized ratio {now:.3f} is {-change:.1%} below "
                f"the baseline {base:.3f} (tolerance {tolerance:.0%})"
            )
        elif change > tolerance:
            verdict = "faster (consider --update-baseline)"
        lines.append(
            f"  {name:40s} base {base:10.3f}  now {now:10.3f}  "
            f"({change:+.1%}) {verdict}"
        )
    for key in sorted(set(current) - set(baseline)):
        lines.append(
            f"  {'/'.join(key):40s} (new row, not in baseline — "
            f"run --update-baseline to start tracking it)"
        )
    return lines, regressions


def check_ratio_gates(
    raw: dict[tuple[str, str], float], gates: list[dict]
) -> tuple[list[str], list[str]]:
    """Enforce ``ratio_gates`` on the *raw* rows (calibration cancels).

    Each gate: ``{"name", "numerator": "experiment/mode",
    "denominator": "experiment/mode", "min_ratio": float}``.
    """
    lines: list[str] = []
    regressions: list[str] = []
    for gate in gates:
        name = str(gate.get("name", "unnamed-gate"))
        num_key = tuple(str(gate.get("numerator", "")).split("/", 1))
        den_key = tuple(str(gate.get("denominator", "")).split("/", 1))
        floor = float(gate.get("min_ratio", 0.0))
        num = raw.get(num_key) if len(num_key) == 2 else None
        den = raw.get(den_key) if len(den_key) == 2 else None
        if not num or not den:
            missing = "/".join(num_key if not num else den_key)
            regressions.append(f"{name}: row {missing} missing from this run")
            continue
        ratio = num / den
        verdict = "ok" if ratio >= floor else "BELOW FLOOR"
        lines.append(
            f"  {name:40s} ratio {ratio:10.2f}  floor {floor:.2f}  {verdict}"
        )
        if ratio < floor:
            regressions.append(
                f"{name}: {'/'.join(num_key)} is only {ratio:.2f}x "
                f"{'/'.join(den_key)} (floor {floor:.2f}x)"
            )
    return lines, regressions


def append_history(
    path: Path, commit: str, rows: dict[tuple[str, str], float]
) -> None:
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(
        {
            "commit": commit,
            "ts": time.time(),
            "rows": {"/".join(key): value for key, value in sorted(rows.items())},
        }
    )
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=Path, required=True, help="JSONL from BENCH_JSON_OUT"
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY)
    parser.add_argument("--commit", default="unknown")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's tolerance",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current rows instead of gating",
    )
    args = parser.parse_args(argv)

    raw = load_rows(args.rows)
    if not raw:
        print(f"no usable rows in {args.rows}", file=sys.stderr)
        return 1

    if args.update_baseline:
        calibration = ("telemetry-overhead", "untraced")
        normalized = normalize(raw, calibration)
        # Ratio gates are policy, not measurements — carry them over.
        gates = []
        if args.baseline.exists():
            try:
                old = json.loads(args.baseline.read_text(encoding="utf-8"))
                gates = old.get("ratio_gates") or []
            except (json.JSONDecodeError, OSError):
                gates = []
        payload = {
            "calibration": list(calibration),
            "tolerance": args.tolerance if args.tolerance is not None else 0.20,
            "ratio_gates": gates,
            "rows": {
                "/".join(key): value for key, value in sorted(normalized.items())
            },
        }
        args.baseline.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        # First runs used to leave the history file unwritten (the
        # early return skipped append_history), so trend charts lost
        # their very first point — the one every later run is compared
        # against.  Record it on every path.
        append_history(args.history, args.commit, normalized)
        print(f"baseline rewritten: {args.baseline}")
        return 0

    if not args.baseline.exists():
        append_history(
            args.history,
            args.commit,
            normalize(raw, ("telemetry-overhead", "untraced")),
        )
        print(
            f"no baseline at {args.baseline}; run with --update-baseline "
            f"first (this run's rows were still appended to "
            f"{args.history})",
            file=sys.stderr,
        )
        return 1
    base_doc = json.loads(args.baseline.read_text(encoding="utf-8"))
    calibration = tuple(base_doc.get("calibration") or ())
    if len(calibration) != 2:
        print(f"malformed baseline {args.baseline}", file=sys.stderr)
        return 1
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else float(base_doc.get("tolerance", 0.20))
    )
    baseline = {
        tuple(key.split("/", 1)): float(value)
        for key, value in (base_doc.get("rows") or {}).items()
    }
    normalized = normalize(raw, calibration)
    append_history(args.history, args.commit, normalized)

    lines, regressions = compare(normalized, baseline, tolerance)
    gate_lines, gate_regressions = check_ratio_gates(
        raw, base_doc.get("ratio_gates") or []
    )
    regressions.extend(gate_regressions)
    print(
        f"perf-trend vs {args.baseline.name} "
        f"(calibration {'/'.join(calibration)}, tolerance {tolerance:.0%}):"
    )
    print("\n".join(lines))
    if gate_lines:
        print("ratio gates (raw same-run ratios, hard floors):")
        print("\n".join(gate_lines))
    if regressions:
        print("\nREGRESSIONS:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
