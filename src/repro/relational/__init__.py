"""Mini in-memory relational engine (substrate S5).

Provides the schema-validated tuple store the paper's systems sit on:
the graph builder turns its tuples into nodes and its foreign keys into
edges, the keyword index tokenizes its text columns, the Sparse baseline
enumerates candidate networks over its schema graph and executes them
with indexed nested-loop joins, and the workload generator evaluates the
ground-truth join networks on it.
"""

from repro.relational.database import Database
from repro.relational.indexes import HashIndex
from repro.relational.query import follow_fk, follow_fk_reverse, join_step
from repro.relational.schema import ForeignKey, Schema, Table

__all__ = [
    "Database",
    "HashIndex",
    "Schema",
    "Table",
    "ForeignKey",
    "follow_fk",
    "follow_fk_reverse",
    "join_step",
]
