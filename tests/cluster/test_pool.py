"""WorkerPool failure drills: crash mid-batch, restart, drain, close.

These tests kill real worker processes, so each builds its own
throwaway pool/service rather than sharing the session fleet.
"""

import threading
import time

import pytest

from repro.cluster import ShardedQueryService
from repro.cluster.pool import WorkerPool
from repro.errors import PoolClosedError, WorkerCrashedError
from repro.service.service import QueryRequest


def _wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def pool(toy_snapshot):
    pool = WorkerPool(
        {0: {"toy": str(toy_snapshot)}},
        health_interval=0.2,
    )
    with pool:
        yield pool


def test_ping_and_warmup(pool):
    assert pool.ping(0, timeout=60.0)
    timings = pool.warmup()
    assert "toy" in timings[0]
    assert pool.alive() == {0: True}
    assert pool.restarts() == {0: 0}


def test_kill_mid_batch_yields_structured_errors_and_recovers(toy_snapshot):
    service = ShardedQueryService(
        {"toy": toy_snapshot}, num_workers=1, health_interval=0.2
    )
    try:
        service.warmup()
        pool = service.pool
        # Hold the worker busy so a real batch queues behind the sleep,
        # then kill it mid-batch: every in-flight request must come back
        # as a structured WorkerCrashedError response — never a hang.
        pool.submit(0, "sleep", 60.0)
        outcome = {}

        def run_batch():
            outcome["responses"] = service.search_many(
                [QueryRequest("toy", "gray transaction", use_cache=False)] * 3
            )

        batch_thread = threading.Thread(target=run_batch)
        batch_start = time.monotonic()
        batch_thread.start()
        # Sleep + 3 searches in flight, then pull the trigger.
        assert _wait_until(lambda: len(pool._inflight) >= 4)
        old_pid = pool.pids()[0]
        pool.process(0).kill()

        batch_thread.join(timeout=30.0)
        assert not batch_thread.is_alive(), "batch hung after worker crash"
        assert time.monotonic() - batch_start < 30.0
        responses = outcome["responses"]
        assert len(responses) == 3
        for response in responses:
            assert not response.ok
            assert response.error_type == WorkerCrashedError.__name__
            assert "crashed" in response.error
            assert response.result is None
            assert response.request.dataset == "toy"
            with pytest.raises(WorkerCrashedError):
                response.raise_for_error()

        # The supervisor restarts the worker and the next batch works.
        assert _wait_until(
            lambda: pool.pids()[0] not in (None, old_pid), timeout=30.0
        )
        assert pool.restarts()[0] == 1
        responses = service.search_many(
            [("toy", "gray transaction"), ("toy", "postgres design")],
            timeout=60.0,
        )
        assert [response.ok for response in responses] == [True, True]

        metrics = service.metrics()
        assert metrics["errors"].get(WorkerCrashedError.__name__, 0) >= 3
    finally:
        service.close()


def test_control_futures_fail_with_exception_on_crash(pool):
    assert pool.ping(0, timeout=60.0)
    pool.submit(0, "sleep", 60.0)
    blocked_ping = pool.submit(0, "ping")
    pool.process(0).kill()
    with pytest.raises(WorkerCrashedError):
        blocked_ping.result(timeout=30.0)
    # Restarted worker answers again.
    assert _wait_until(lambda: pool.ping(0, timeout=5.0), timeout=60.0)


def test_responses_produced_before_death_are_not_lost(pool):
    # A response sitting in the worker's pipe when it dies must still
    # complete its future (crash containment, not blanket failure).
    future = pool.submit(0, "ping")
    assert future.result(timeout=60.0)["pong"]
    done = pool.submit(0, "ping")
    assert _wait_until(done.done, timeout=60.0)
    pool.process(0).kill()
    assert done.result(timeout=1.0)["pong"]


def test_dead_worker_without_restart_fails_fast_not_hangs(toy_snapshot):
    service = ShardedQueryService(
        {"toy": toy_snapshot}, num_workers=1, health_interval=0.2, restart=False
    )
    try:
        service.warmup()
        service.pool.process(0).kill()
        assert _wait_until(lambda: not service.pool.alive()[0])
        # Submitting against a permanently-down shard must answer with a
        # structured error immediately — never queue into the void.
        start = time.monotonic()
        response = service.search("toy", "gray transaction")
        assert time.monotonic() - start < 10.0
        assert not response.ok
        assert response.error_type == WorkerCrashedError.__name__
        responses = service.search_many([("toy", "gray"), ("toy", "postgres")])
        assert all(
            r.error_type == WorkerCrashedError.__name__ for r in responses
        )
        assert service.pool.restarts() == {0: 0}
    finally:
        service.close()


def test_close_is_graceful_and_idempotent(toy_snapshot):
    pool = WorkerPool({0: {"toy": str(toy_snapshot)}}, health_interval=0.2)
    pool.start()
    assert pool.ping(0, timeout=60.0)
    process = pool.process(0)
    pool.close()
    assert not process.is_alive()
    pool.close()  # idempotent
    with pytest.raises(PoolClosedError):
        pool.submit(0, "ping")


def test_close_fails_inflight_requests_not_hangs(toy_snapshot):
    pool = WorkerPool(
        {0: {"toy": str(toy_snapshot)}}, health_interval=0.2
    )
    pool.start()
    assert pool.ping(0, timeout=60.0)
    pool.submit(0, "sleep", 120.0)
    stuck = pool.request(0, {"dataset": "toy", "query": "gray"})
    start = time.monotonic()
    pool.close(timeout=1.0)
    payload = stuck.result(timeout=5.0)
    assert time.monotonic() - start < 30.0
    # A closed pool is not a crashed worker: "retry it" would be a lie,
    # there is nothing left to retry against.
    assert payload["error_type"] == PoolClosedError.__name__

    with pytest.raises(ValueError):
        WorkerPool({})
