"""render_dashboard: a pure function over plain dicts — escaping,
section presence, and tolerance of missing/degraded data."""

from repro.telemetry.dashboard import algorithm_summary, render_dashboard


def full_data() -> dict:
    return {
        "service": "ShardedQueryService",
        "generated_at": 1700000000.0,
        "health": {
            "status": "ok",
            "workers": 2,
            "workers_alive": 2,
            "restarts": {"0": 1, "1": 0},
            "versions": {"toy": "w0=3, w1=3"},
            "version_drift": [],
            "wal_seq": {"toy": 3},
        },
        "metrics": {
            "requests_total": 120,
            "errors_total": 2,
            "cache_hit_rate": 0.5,
            "algorithms": {
                "bidirectional": {
                    "requests": 100,
                    "p50": 0.01,
                    "p90": 0.05,
                    "p99": 0.2,
                }
            },
        },
        "slo": [
            {
                "objective": "availability",
                "kind": "availability",
                "dataset": "*",
                "burn_threshold": 6.0,
                "windows": {
                    "fast": {"burn_rate": 12.0},
                    "slow": {"burn_rate": 8.0},
                },
                "firing": True,
            }
        ],
        "events": [
            {
                "seq": 1,
                "ts": 1700000000.0,
                "kind": "worker_crash",
                "severity": "error",
                "message": "worker 0 died",
                "dataset": None,
                "source": "pool",
            },
            {
                "seq": 2,
                "ts": 1700000001.0,
                "kind": "worker_restart",
                "severity": "warning",
                "message": "worker 0 respawned",
                "dataset": None,
                "source": "pool",
            },
        ],
        "slow_queries": [
            {
                "recorded_at": 1700000000.0,
                "elapsed": 1.5,
                "trace_id": "trace-abc",
                "request": {"dataset": "toy", "query": "gray transaction"},
                "error_type": None,
            }
        ],
        "profile": {
            "samples": {"MainThread;app.py:serve;engine.py:search": 90},
            "total": 100,
        },
    }


class TestSections:
    def test_full_page_has_every_section(self):
        html = render_dashboard(full_data())
        for needle in (
            "<!doctype html>",
            "SLO",
            "FIRING",
            "Events",
            "worker_crash",
            "Datasets",
            "Latency",
            "Slow queries",
            "Hottest stacks",
            "/debug/trace/trace-abc?format=text",
            "/debug/profile?seconds=2",
        ):
            assert needle in html, needle

    def test_events_render_newest_first(self):
        html = render_dashboard(full_data())
        assert html.index("worker_restart") < html.index("worker_crash")

    def test_degraded_fleet_shows_bad_status(self):
        data = full_data()
        data["health"]["status"] = "degraded"
        data["health"]["workers_alive"] = 1
        html = render_dashboard(data)
        assert "degraded" in html
        assert 'class="value bad"' in html

    def test_empty_data_still_renders_a_page(self):
        html = render_dashboard({})
        assert "<!doctype html>" in html
        assert "repro ops dashboard" in html
        assert "(none)" in html  # empty tables collapse to a stub

    def test_refresh_meta_tag_and_opt_out(self):
        assert 'http-equiv="refresh" content="5"' in render_dashboard({})
        assert "http-equiv" not in render_dashboard({}, refresh_seconds=None)

    def test_html_escaping_of_event_messages(self):
        data = full_data()
        data["events"] = [
            {
                "seq": 1,
                "ts": 0.0,
                "kind": "note",
                "severity": "info",
                "message": '<script>alert("xss")</script>',
                "source": "test",
            }
        ]
        html = render_dashboard(data)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html


class TestAlgorithmSummary:
    def test_converts_service_metrics_keys(self):
        summary = algorithm_summary(
            {
                "bidirectional": {
                    "requests": 10,
                    "latency_p50": 0.01,
                    "latency_p90": 0.02,
                    "latency_p99": 0.03,
                    "latency_mean": 0.015,
                }
            }
        )
        assert summary == {
            "bidirectional": {
                "requests": 10,
                "p50": 0.01,
                "p90": 0.02,
                "p99": 0.03,
            }
        }

    def test_tolerates_none(self):
        assert algorithm_summary(None) == {}
        assert algorithm_summary({"x": None}) == {
            "x": {"requests": None, "p50": None, "p90": None, "p99": None}
        }
