"""Cluster-wide live mutations: broadcast, per-replica visibility, drift.

The acceptance scenario for the live subsystem: a mutation committed
against a running :class:`~repro.cluster.ShardedQueryService` becomes
visible to subsequent queries on **every replica** without any process
restart, while stale cached results are never served afterwards.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import ShardedQueryService
from repro.cluster.http import make_server
from repro.errors import MutationError
from repro.service.service import QueryRequest
from repro.service.wire import request_to_dict, response_from_dict


@pytest.fixture(scope="module")
def fleet(toy_snapshot):
    """Two workers, the dataset replicated on both — every broadcast
    must reach two distinct processes."""
    service = ShardedQueryService(
        {"toy": toy_snapshot},
        num_workers=2,
        default_replicas=2,
        health_interval=0.2,
    )
    service.warmup()
    yield service
    service.close()


def replica_answers(fleet, worker_id: int, query: str):
    """Ask one specific replica directly (bypassing routing)."""
    payload = fleet.pool.request(
        worker_id, request_to_dict(QueryRequest(dataset="toy", query=query))
    ).result(timeout=60)
    return response_from_dict(payload)


class TestBroadcast:
    def test_mutation_visible_on_every_replica_without_restart(self, fleet):
        pids_before = fleet.pool.pids()

        # Unknown term everywhere first.
        for worker_id in (0, 1):
            response = replica_answers(fleet, worker_id, "zyzzqx")
            assert response.error_type == "KeywordNotFoundError"

        outcome = fleet.apply(
            "toy",
            [
                {
                    "op": "add_node",
                    "label": "Zyzzqx Systems",
                    "table": "paper",
                    "text": "Zyzzqx Systems",
                },
                {"op": "add_edge", "u": -1, "v": 3},
            ],
        )
        assert outcome["drift"] is False
        assert outcome["workers"] == {"0": outcome["version"], "1": outcome["version"]}

        # Visible on both replicas...
        new_node = outcome["new_nodes"][0]
        for worker_id in (0, 1):
            response = replica_answers(fleet, worker_id, "zyzzqx")
            assert response.ok, response.error
            roots = {answer.tree.root for answer in response.result.answers}
            assert new_node in roots
        # ...with no process restart.
        assert fleet.pool.pids() == pids_before
        assert all(count == 0 for count in fleet.pool.restarts().values())

    def test_stale_cache_never_served_after_broadcast(self, fleet):
        # Prime both replicas' private caches with the same query.
        for worker_id in (0, 1):
            assert replica_answers(fleet, worker_id, "transaction").ok
        cached = replica_answers(fleet, 0, "transaction")
        assert cached.cached  # second hit on worker 0 came from cache

        outcome = fleet.apply(
            "toy",
            [
                {
                    "op": "add_node",
                    "label": "Calvin Transaction Scheduling",
                    "table": "paper",
                    "text": "Calvin Transaction Scheduling",
                },
            ],
        )
        new_node = outcome["new_nodes"][0]
        for worker_id in (0, 1):
            response = replica_answers(fleet, worker_id, "transaction")
            assert response.ok
            assert not response.cached
            roots = {answer.tree.root for answer in response.result.answers}
            assert new_node in roots

    def test_versions_observable_everywhere(self, fleet):
        version = fleet.apply("toy", [{"op": "add_node", "label": "v"}])["version"]
        by_worker = fleet.dataset_versions()["toy"]
        assert by_worker == {"0": version, "1": version}
        health = fleet.health()
        assert health["versions"]["toy"] == by_worker
        assert health["version_drift"] == []
        merged = fleet.metrics()
        assert merged["datasets"]["versions"]["toy"] == version
        assert merged["datasets"]["version_drift"] == []

    def test_busy_replica_reports_unknown_not_consistent(self, fleet):
        """A replica too wedged to answer the versions probe must show
        up as unknown — never silently vanish from the drift check."""
        holds = [
            fleet.pool.submit(worker_id, "sleep", 1.0)
            for worker_id in (0, 1)
        ]
        health = fleet.health(versions_timeout=0.2)
        for future in holds:
            future.result(timeout=30)
        assert health["version_unknown"] == ["toy"]
        assert health["versions"]["toy"] == {"0": None, "1": None}
        assert health["version_drift"] == []
        # and a later unhurried probe recovers
        health = fleet.health()
        assert health["version_unknown"] == []

    def test_bad_batch_raises_and_leaves_replicas_consistent(self, fleet):
        before = fleet.dataset_versions()["toy"]
        with pytest.raises(MutationError):
            fleet.apply(
                "toy",
                [
                    {"op": "add_node", "label": "ghost", "text": "ghostword"},
                    {"op": "add_edge", "u": -1, "v": 10_000},
                ],
            )
        assert fleet.dataset_versions()["toy"] == before
        for worker_id in (0, 1):
            response = replica_answers(fleet, worker_id, "ghostword")
            assert response.error_type == "KeywordNotFoundError"

    def test_apply_timeout_is_structured_and_batch_still_lands(self, fleet):
        """A supervisor-side timeout must surface as a structured
        ClusterError (never a raw concurrent.futures.TimeoutError), and
        — because the message is already queued — the batch commits
        once the busy worker drains, which the error text warns about."""
        import time

        from repro.errors import ClusterError

        before = fleet.dataset_versions()["toy"]
        holds = [fleet.pool.submit(worker_id, "sleep", 1.0) for worker_id in (0, 1)]
        with pytest.raises(ClusterError, match="may yet be processed"):
            fleet.apply(
                "toy",
                [{"op": "add_node", "label": "late", "text": "lateword"}],
                timeout=0.2,
            )
        for future in holds:
            future.result(timeout=30)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            versions = set(fleet.dataset_versions(timeout=5.0)["toy"].values())
            if versions == {max(before.values()) + 1}:
                break
            time.sleep(0.1)
        assert versions == {max(before.values()) + 1}
        response = replica_answers(fleet, 0, "lateword")
        assert response.ok

    def test_malformed_batch_rejected_supervisor_side(self, fleet):
        with pytest.raises(MutationError, match="unknown mutation op"):
            fleet.apply("toy", [{"op": "truncate"}])

    def test_unknown_dataset(self, fleet):
        from repro.errors import UnknownDatasetError

        with pytest.raises(UnknownDatasetError):
            fleet.apply("nope", [{"op": "add_node", "label": "x"}])


class TestReloadBroadcast:
    def test_reload_noop_when_digest_matches(self, toy_snapshot):
        with ShardedQueryService(
            {"toy": toy_snapshot}, num_workers=2, default_replicas=2
        ) as service:
            service.warmup()
            outcome = service.reload("toy", toy_snapshot)
            assert outcome["reloaded"] == {"0": False, "1": False}

    def test_reload_resets_mutated_replicas(self, toy_snapshot):
        with ShardedQueryService(
            {"toy": toy_snapshot}, num_workers=2, default_replicas=2
        ) as service:
            service.warmup()
            service.apply("toy", [{"op": "add_node", "label": "m", "text": "mutword"}])
            outcome = service.reload("toy", toy_snapshot)
            assert outcome["reloaded"] == {"0": True, "1": True}
            response = replica_answers(service, 0, "mutword")
            assert response.error_type == "KeywordNotFoundError"


class TestHttpMutate:
    @pytest.fixture()
    def http_fleet(self, fleet):
        server = make_server(fleet)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def _post(self, url: str, payload: dict):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_post_mutate_and_healthz_versions(self, http_fleet, fleet):
        status, body = self._post(
            f"{http_fleet}/mutate",
            {
                "dataset": "toy",
                "mutations": [
                    {"op": "add_node", "label": "HTTP Paper", "text": "httpword"}
                ],
            },
        )
        assert status == 200
        assert body["applied"] == 1
        assert body["drift"] is False
        response = fleet.search("toy", "httpword")
        assert response.ok

        with urllib.request.urlopen(f"{http_fleet}/healthz") as raw:
            health = json.loads(raw.read())
        assert health["versions"]["toy"] == body["workers"]

    def test_post_mutate_bad_batch_is_400(self, http_fleet):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                f"{http_fleet}/mutate",
                {"dataset": "toy", "mutations": [{"op": "bogus"}]},
            )
        assert excinfo.value.code == 400

    def test_post_mutate_unknown_dataset_is_404(self, http_fleet):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                f"{http_fleet}/mutate",
                {"dataset": "nope", "mutations": [{"op": "add_node"}]},
            )
        assert excinfo.value.code == 404

    def test_post_mutate_missing_fields_is_400(self, http_fleet):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http_fleet}/mutate", {"mutations": []})
        assert excinfo.value.code == 400

    def test_post_mutate_unsupported_service_is_501(self, toy_engine_session):
        class Frozen:
            def datasets(self):
                return ["toy"]

            def search(self, request):  # pragma: no cover - unused
                raise NotImplementedError

        server = make_server(Frozen())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(
                    f"http://{host}:{port}/mutate",
                    {"dataset": "toy", "mutations": []},
                )
            assert excinfo.value.code == 501
        finally:
            server.shutdown()
            server.server_close()
