"""Extensions the paper sketches: near queries and edge-type constraints.

* Near queries (Section 4.3, footnote 6): rank individual nodes by
  aggregated spreading activation — "find the entities most related to
  these keywords" instead of connecting trees.
* Edge-type policies (Section 1): "enforce constraints using edge types
  to restrict search to specified search paths, or to prioritize
  certain paths over others" — here, searching with and without
  citation links, and de-prioritizing conference hubs.

Run:  python examples/extensions_near_and_constraints.py
"""

import random

from repro import KeywordSearchEngine
from repro.datasets import DblpConfig, make_dblp
from repro.graph import EdgePolicy
from repro.render import render_tree
from repro.workload import WorkloadGenerator


def main() -> None:
    db = make_dblp(DblpConfig().scaled(0.5))
    engine = KeywordSearchEngine.from_database(db)
    generator = WorkloadGenerator(db, engine.graph, engine.index)
    rng = random.Random(42)
    query = generator.sample_query(
        rng, n_keywords=2, result_size=3, band_combo=("T", "S")
    )
    keywords = list(query.keywords)
    print(f"query: {keywords}  origins={query.origin_sizes}")
    print()

    # ----- near query: which entities sit closest to both keywords? ---
    near = engine.near(keywords, k=5)
    print("near query — top related nodes:")
    for node, score in near:
        print(
            f"  {score:.6f}  {engine.graph.table(node)}#{node} "
            f"{engine.graph.label(node)[:50]}"
        )
    print()

    # ----- unconstrained tree search ----------------------------------
    result = engine.search(keywords, k=1)
    if result.answers:
        print("best unconstrained answer:")
        print(render_tree(result.best().tree, engine.graph))
    print()

    # ----- forbid citation links --------------------------------------
    no_cites = engine.constrained(
        EdgePolicy(rules={("cites", "*"): None, ("*", "cites"): None})
    )
    result = no_cites.search(keywords, k=1)
    print("best answer with citation links forbidden:")
    if result.answers:
        print(render_tree(result.best().tree, no_cites.graph))
    else:
        print("  (no citation-free connection exists)")
    print()

    # ----- de-prioritize conference hubs ------------------------------
    fewer_hubs = engine.constrained(
        EdgePolicy(rules={("*", "conference"): 5.0, ("conference", "*"): 5.0})
    )
    result = fewer_hubs.search(keywords, k=1)
    print("best answer with conference hops 5x more expensive:")
    if result.answers:
        print(render_tree(result.best().tree, fewer_hubs.graph))


if __name__ == "__main__":
    main()
