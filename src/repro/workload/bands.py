"""Origin-size bands: Tiny / Small / Medium / Large keywords.

Paper Section 5.6 buckets keywords by how many tuples they match:
tiny (1-500), small (1000-2000), medium (2500-5000), large (>7000) on
the 2M-node DBLP graph; Section 5.4 splits workloads at <1000 ("small
origin") and >8000 ("large origin").  Our graphs are scaled down, so
the thresholds scale proportionally with a floor that keeps the bands
distinct on small graphs (DESIGN.md Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf

__all__ = ["OriginBands", "PAPER_REFERENCE_NODES", "BAND_ORDER"]

#: Nodes in the paper's DBLP graph, the reference for threshold scaling.
PAPER_REFERENCE_NODES = 2_000_000

#: Canonical band codes, rarest first.
BAND_ORDER = ("T", "S", "M", "L")


@dataclass(frozen=True)
class OriginBands:
    """Per-band (lo, hi) inclusive frequency ranges plus the Section 5.4
    small/large origin split thresholds."""

    tiny: tuple[float, float] = (1, 500)
    small: tuple[float, float] = (1000, 2000)
    medium: tuple[float, float] = (2500, 5000)
    large: tuple[float, float] = (7000, inf)
    small_origin_max: float = 1000  # "less than 1000 records matched"
    large_origin_min: float = 8000  # "more than 8000 records matched"

    # ------------------------------------------------------------------
    @classmethod
    def scaled_for(
        cls, num_nodes: int, *, reference: int = PAPER_REFERENCE_NODES
    ) -> "OriginBands":
        """Scale the paper's thresholds to a graph of ``num_nodes``.

        Floors keep the four bands disjoint and non-degenerate on the
        small graphs the pure-Python benches use.
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes!r}")
        r = num_nodes / reference

        def at_least(value: float, floor: float) -> float:
            return max(floor, value * r)

        return cls(
            tiny=(1, at_least(500, 3)),
            small=(at_least(1000, 5), at_least(2000, 10)),
            medium=(at_least(2500, 12), at_least(5000, 25)),
            large=(at_least(7000, 30), inf),
            small_origin_max=at_least(1000, 5),
            large_origin_min=at_least(8000, 30),
        )

    # ------------------------------------------------------------------
    def classify(self, frequency: int) -> str:
        """Band code of a keyword frequency: 'T', 'S', 'M', 'L', or '-'
        when it falls between bands."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        for code, (lo, hi) in zip(BAND_ORDER, self.ranges()):
            if lo <= frequency <= hi:
                return code
        return "-"

    def ranges(self) -> tuple[tuple[float, float], ...]:
        return (self.tiny, self.small, self.medium, self.large)

    def range_for(self, code: str) -> tuple[float, float]:
        try:
            return self.ranges()[BAND_ORDER.index(code)]
        except ValueError:
            raise ValueError(f"unknown band code {code!r}") from None

    # ------------------------------------------------------------------
    def is_small_origin(self, min_frequency: int) -> bool:
        """Section 5.4: at least one keyword under the small threshold."""
        return min_frequency < self.small_origin_max

    def is_large_origin(self, max_frequency: int) -> bool:
        """Section 5.4: at least one keyword over the large threshold."""
        return max_frequency > self.large_origin_min
