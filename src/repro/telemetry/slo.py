"""SLO objectives and multi-window burn-rate alerting.

Declarative service-level objectives — p99-style latency bounds, error
rate, availability — evaluated over **sliding windows of the metrics
registry the service already keeps**.  No second measurement pipeline:
the engine periodically snapshots cumulative counter/histogram exports
and computes window deltas, so the numbers an alert fires on are the
same numbers ``/metrics`` serves.

Alerting follows SRE multi-window burn-rate practice: an objective's
**burn rate** is how fast it is consuming its error budget (``bad
fraction / budget``; burn 1.0 = exactly on budget).  An alert fires
only when *both* a fast window (catches sudden breakage quickly) and a
slow window (refuses to page on a blip) exceed the burn threshold, and
clears as soon as the fast window recovers.  Transitions emit
``slo_breach`` / ``slo_clear`` events and every evaluation refreshes
``repro_slo_*`` gauge families for Prometheus.

Availability is liveness-based when the source exports the cluster
worker gauges (fraction of workers alive, time-averaged over the
window) and falls back to the fraction of requests failed by
*unavailability* error types (worker crash, pool closed) on the thread
tier, which has no worker fleet.

The math is exposed as pure helpers (:func:`histogram_bad_fraction`,
:func:`burn_rate`) so property tests can pin the key invariant:
cumulative histogram buckets merge by addition, so the burn rate over
merged replica exports equals the burn rate over the union of the
underlying samples.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from .events import EventLog
from .metrics import MetricsRegistry

__all__ = [
    "SloEngine",
    "SloObjective",
    "burn_rate",
    "default_objectives",
    "histogram_bad_fraction",
]

#: Error types that count against *availability* (the service was up
#: but structurally unable to answer), as opposed to request-shaped
#: errors like an unknown keyword.
UNAVAILABLE_ERROR_TYPES = ("WorkerCrashedError", "PoolClosedError")


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective.

    ``kind`` selects the signal:

    * ``"latency"`` — fraction of requests slower than ``threshold``
      seconds must stay within ``budget`` (e.g. threshold 1.0, budget
      0.01 ⇒ "99% of requests under a second").
    * ``"error_rate"`` — fraction of requests that errored must stay
      within ``budget``.
    * ``"availability"`` — unavailable fraction (dead workers, crashed
      requests) must stay within ``budget``.

    ``dataset`` scopes the objective (``"*"`` = fleet-wide; samples
    without a dataset label only match ``"*"``).  ``fast_window`` /
    ``slow_window`` are the two alerting windows in seconds;
    ``burn_threshold`` is the burn rate both must exceed to fire.
    """

    name: str
    kind: str  # "latency" | "error_rate" | "availability"
    dataset: str = "*"
    threshold: float = 1.0  # latency only: the per-request bound, seconds
    budget: float = 0.01  # allowed bad fraction (1 - target)
    fast_window: float = 60.0
    slow_window: float = 300.0
    burn_threshold: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate", "availability"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError("windows must satisfy 0 < fast <= slow")


def default_objectives() -> tuple[SloObjective, ...]:
    """The stock fleet-wide objectives both service tiers start with."""
    return (
        SloObjective(name="availability", kind="availability", budget=0.01),
        SloObjective(name="error-rate", kind="error_rate", budget=0.05),
        SloObjective(
            name="latency-p99", kind="latency", threshold=1.0, budget=0.01
        ),
    )


# ----------------------------------------------------------------------
# Pure window math — kept free of engine state so tests can pin it.


def burn_rate(bad: float, total: float, budget: float) -> float:
    """How fast the error budget burns: ``(bad/total) / budget``.

    1.0 means exactly on budget; 0 when the window saw no traffic.
    """
    if total <= 0:
        return 0.0
    return (bad / total) / budget


def histogram_bad_fraction(
    buckets: Mapping[str, float], count: float, threshold: float
) -> float:
    """Fraction of observations above ``threshold`` seconds.

    ``buckets`` are cumulative Prometheus-style ``{le_label: count}``
    pairs as exported by :class:`~repro.telemetry.metrics.Histogram`.
    The largest bucket bound ≤ ``threshold`` stands in for the
    threshold, which over-counts badness (conservative) when the
    threshold falls between bounds — align SLO thresholds to bucket
    bounds for exact numbers.
    """
    if count <= 0:
        return 0.0
    best_bound = None
    good = 0.0
    for label, value in buckets.items():
        if label == "+Inf":
            continue
        bound = float(label)
        if bound <= threshold and (best_bound is None or bound > best_bound):
            best_bound = bound
            good = value
    return max(0.0, (count - good) / count)


# ----------------------------------------------------------------------


class SloEngine:
    """Evaluates objectives over sliding windows of a metrics export.

    ``source`` is a zero-argument callable returning a families export
    (``MetricsRegistry.export()`` shape).  ``registry`` (optional)
    receives the ``repro_slo_*`` gauge families; ``event_log``
    (optional) receives breach/clear events.  Family names are
    parameters so the engine serves both tiers: the cluster points it
    at its supervisor-side fleet counters, the thread tier at its
    per-algorithm service counters.
    """

    def __init__(
        self,
        objectives: Iterable[SloObjective],
        *,
        source: Callable[[], Mapping[str, Any]],
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        request_family: str = "repro_fleet_requests_total",
        error_family: str = "repro_fleet_failures_total",
        latency_family: str = "repro_fleet_request_latency_seconds",
        workers_family: str = "repro_cluster_workers",
        workers_alive_family: str = "repro_cluster_workers_alive",
        unavailable_types: Iterable[str] = UNAVAILABLE_ERROR_TYPES,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.objectives = tuple(objectives)
        self._source = source
        self._event_log = event_log
        self._families = {
            "requests": request_family,
            "errors": error_family,
            "latency": latency_family,
            "workers": workers_family,
            "alive": workers_alive_family,
        }
        self._unavailable = frozenset(unavailable_types)
        self._clock = clock
        self._lock = threading.Lock()
        self._snapshots: deque[dict[str, Any]] = deque()
        self._firing: dict[str, bool] = {o.name: False for o in self.objectives}
        self._since: dict[str, float | None] = {o.name: None for o in self.objectives}
        self._last_status: list[dict[str, Any]] = []
        horizon = max((o.slow_window for o in self.objectives), default=300.0)
        self._retention = horizon * 2.0 + 60.0
        self._burn_gauge = None
        self._firing_gauge = None
        self._alerts_total = None
        if registry is not None and self.objectives:
            self._burn_gauge = registry.gauge(
                "repro_slo_burn_rate",
                "Error-budget burn rate per objective and window "
                "(1.0 = exactly on budget)",
                labels=("objective", "window"),
                merge="max",
            )
            self._firing_gauge = registry.gauge(
                "repro_slo_alert_firing",
                "1 while the objective's multi-window burn alert is firing",
                labels=("objective",),
                merge="max",
            )
            self._alerts_total = registry.counter(
                "repro_slo_alerts_total",
                "Burn-rate alerts fired per objective",
                labels=("objective",),
            )

    # ------------------------------------------------------------------
    # Snapshot extraction

    def _extract(self, families: Mapping[str, Any]) -> dict[str, Any]:
        """Boil a families export down to the numbers the windows need."""

        def samples(name: str) -> list[dict[str, Any]]:
            family = families.get(name) or {}
            return list(family.get("samples") or [])

        def gauge_value(name: str) -> float | None:
            rows = samples(name)
            if not rows:
                return None
            return float(sum(row.get("value") or 0.0 for row in rows))

        snapshot: dict[str, Any] = {
            "ts": self._clock(),
            "requests": [
                (row.get("labels") or {}, float(row.get("value") or 0.0))
                for row in samples(self._families["requests"])
            ],
            "errors": [
                (row.get("labels") or {}, float(row.get("value") or 0.0))
                for row in samples(self._families["errors"])
            ],
            "latency": [
                (
                    row.get("labels") or {},
                    dict(row.get("buckets") or {}),
                    float(row.get("count") or 0.0),
                )
                for row in samples(self._families["latency"])
            ],
        }
        workers = gauge_value(self._families["workers"])
        alive = gauge_value(self._families["alive"])
        snapshot["alive_fraction"] = (
            None if not workers else max(0.0, min(1.0, (alive or 0.0) / workers))
        )
        return snapshot

    @staticmethod
    def _matches(labels: Mapping[str, Any], dataset: str) -> bool:
        if dataset == "*":
            return True
        return labels.get("dataset") == dataset

    def _window_reference(self, now: float, window: float) -> dict[str, Any]:
        """Newest snapshot at least ``window`` old (or the oldest kept)."""
        reference = self._snapshots[0]
        for snapshot in self._snapshots:
            if snapshot["ts"] <= now - window:
                reference = snapshot
            else:
                break
        return reference

    def _counter_delta(
        self,
        newest: Mapping[str, Any],
        oldest: Mapping[str, Any],
        key: str,
        dataset: str,
        type_filter: frozenset[str] | None = None,
    ) -> float:
        def total(snapshot: Mapping[str, Any]) -> float:
            value = 0.0
            for labels, count in snapshot[key]:
                if not self._matches(labels, dataset):
                    continue
                if type_filter is not None and labels.get("type") not in type_filter:
                    continue
                value += count
            return value

        return max(0.0, total(newest) - total(oldest))

    def _latency_delta(
        self,
        newest: Mapping[str, Any],
        oldest: Mapping[str, Any],
        dataset: str,
        threshold: float,
    ) -> tuple[float, float]:
        """(bad, total) request-count deltas for the latency objective."""

        def totals(snapshot: Mapping[str, Any]) -> tuple[float, float]:
            bad = 0.0
            count = 0.0
            for labels, buckets, sample_count in snapshot["latency"]:
                if not self._matches(labels, dataset):
                    continue
                bad += histogram_bad_fraction(buckets, sample_count, threshold) * (
                    sample_count
                )
                count += sample_count
            return bad, count

        bad_new, count_new = totals(newest)
        bad_old, count_old = totals(oldest)
        return max(0.0, bad_new - bad_old), max(0.0, count_new - count_old)

    def _window_stats(
        self, objective: SloObjective, now: float, window: float
    ) -> dict[str, Any]:
        newest = self._snapshots[-1]
        oldest = self._window_reference(now, window)
        if objective.kind == "availability":
            fractions = [
                snapshot["alive_fraction"]
                for snapshot in self._snapshots
                if snapshot["ts"] > now - window
                and snapshot["alive_fraction"] is not None
            ]
            if fractions:
                bad_fraction = 1.0 - (sum(fractions) / len(fractions))
                total = float(len(fractions))
                bad = bad_fraction * total
            else:
                # Thread tier: no worker fleet — unavailability is the
                # fraction of requests failed by crash-class errors.
                total = self._counter_delta(newest, oldest, "requests", "*")
                bad = self._counter_delta(
                    newest, oldest, "errors", objective.dataset, self._unavailable
                )
                bad_fraction = bad / total if total else 0.0
        elif objective.kind == "error_rate":
            total = self._counter_delta(
                newest, oldest, "requests", objective.dataset
            )
            bad = self._counter_delta(newest, oldest, "errors", objective.dataset)
            bad_fraction = bad / total if total else 0.0
        else:  # latency
            bad, total = self._latency_delta(
                newest, oldest, objective.dataset, objective.threshold
            )
            bad_fraction = bad / total if total else 0.0
        return {
            "window": window,
            "bad": bad,
            "total": total,
            "bad_fraction": bad_fraction,
            "burn_rate": burn_rate(bad, total, objective.budget),
        }

    # ------------------------------------------------------------------
    # Evaluation

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """Take a fresh snapshot, slide the windows, update alert state.

        Returns one status dict per objective; also refreshes the
        ``repro_slo_*`` gauges and emits breach/clear events on firing
        transitions.  Safe to call from both the background ticker and
        request handlers.
        """
        export = self._source()
        with self._lock:
            snapshot = self._extract(export)
            if now is not None:
                snapshot["ts"] = now
            tick = snapshot["ts"]
            self._snapshots.append(snapshot)
            while (
                len(self._snapshots) > 2
                and self._snapshots[0]["ts"] < tick - self._retention
            ):
                self._snapshots.popleft()

            statuses: list[dict[str, Any]] = []
            for objective in self.objectives:
                fast = self._window_stats(objective, tick, objective.fast_window)
                slow = self._window_stats(objective, tick, objective.slow_window)
                was_firing = self._firing[objective.name]
                if was_firing:
                    firing = fast["burn_rate"] >= objective.burn_threshold
                else:
                    firing = (
                        fast["burn_rate"] >= objective.burn_threshold
                        and slow["burn_rate"] >= objective.burn_threshold
                    )
                if firing and not was_firing:
                    self._since[objective.name] = tick
                    self._on_fire(objective, fast, slow)
                elif was_firing and not firing:
                    self._since[objective.name] = None
                    self._on_clear(objective, fast)
                self._firing[objective.name] = firing
                status = {
                    "objective": objective.name,
                    "kind": objective.kind,
                    "dataset": objective.dataset,
                    "budget": objective.budget,
                    "burn_threshold": objective.burn_threshold,
                    "windows": {"fast": fast, "slow": slow},
                    "firing": firing,
                    "firing_since": self._since[objective.name],
                }
                if objective.kind == "latency":
                    status["threshold"] = objective.threshold
                statuses.append(status)
                if self._burn_gauge is not None:
                    self._burn_gauge.set(
                        fast["burn_rate"], objective=objective.name, window="fast"
                    )
                    self._burn_gauge.set(
                        slow["burn_rate"], objective=objective.name, window="slow"
                    )
                if self._firing_gauge is not None:
                    self._firing_gauge.set(
                        1.0 if firing else 0.0, objective=objective.name
                    )
            self._last_status = statuses
            return [dict(status) for status in statuses]

    def _on_fire(
        self, objective: SloObjective, fast: Mapping[str, Any], slow: Mapping[str, Any]
    ) -> None:
        if self._alerts_total is not None:
            self._alerts_total.inc(objective=objective.name)
        if self._event_log is not None:
            self._event_log.emit(
                "slo_breach",
                f"SLO {objective.name!r} burning budget at "
                f"{fast['burn_rate']:.1f}x (fast) / {slow['burn_rate']:.1f}x "
                f"(slow); threshold {objective.burn_threshold:g}x",
                severity="error",
                dataset=None if objective.dataset == "*" else objective.dataset,
                source="slo",
                objective=objective.name,
                kind_=objective.kind,
                burn_fast=fast["burn_rate"],
                burn_slow=slow["burn_rate"],
                burn_threshold=objective.burn_threshold,
            )

    def _on_clear(self, objective: SloObjective, fast: Mapping[str, Any]) -> None:
        if self._event_log is not None:
            self._event_log.emit(
                "slo_clear",
                f"SLO {objective.name!r} alert cleared "
                f"(fast burn {fast['burn_rate']:.1f}x)",
                severity="info",
                dataset=None if objective.dataset == "*" else objective.dataset,
                source="slo",
                objective=objective.name,
                burn_fast=fast["burn_rate"],
            )

    def status(self) -> list[dict[str, Any]]:
        """The most recent evaluation (without taking a new snapshot)."""
        with self._lock:
            return [dict(status) for status in self._last_status]

    def firing(self) -> dict[str, bool]:
        with self._lock:
            return dict(self._firing)
