"""Structured mutations and their wire format (live subsystem).

A mutation is a small frozen dataclass describing one change to a
dataset: add a node, add or remove a forward edge, or replace a node's
indexed text.  Like :class:`~repro.service.QueryRequest`, every
mutation round-trips through a plain JSON-safe dict
(:func:`mutation_to_dict` / :func:`mutation_from_dict`) so the same
objects travel over the cluster tier's process boundary and the HTTP
front-end's ``POST /mutate`` body.

Batch node aliases
------------------
A batch often adds a node and immediately wires edges to it, before the
real node id is known.  Edge endpoints (and ``UpdateText.node``) may
therefore be *negative aliases*: ``-(k + 1)`` refers to the k-th
:class:`AddNode` of the same batch (``-1`` is the first added node,
``-2`` the second, ...).  :meth:`MutableDataset.mutate` resolves
aliases and reports the assigned real ids in its
:class:`MutationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import MutationError
from repro.graph.weights import DEFAULT_FORWARD_WEIGHT

__all__ = [
    "AddNode",
    "AddEdge",
    "RemoveEdge",
    "UpdateText",
    "Mutation",
    "MutationResult",
    "mutation_to_dict",
    "mutation_from_dict",
    "coerce_mutation",
    "coerce_mutations",
]


@dataclass(frozen=True)
class AddNode:
    """Add a node, optionally indexed under ``text`` and its relation
    name (``table``), mirroring what :func:`repro.index.build_index`
    does for a freshly inserted tuple.

    ``prestige`` pins the node's prestige explicitly; None (the
    default) takes the dataset's ``new_node_prestige``.  The WAL
    journals the *resolved* value, so a replayed node scores
    bit-identically no matter which snapshot lineage the replay started
    from.
    """

    label: str = ""
    table: Optional[str] = None
    ref: Optional[tuple[str, Union[int, str]]] = None
    text: Optional[str] = None
    prestige: Optional[float] = None

    def __post_init__(self) -> None:
        if self.prestige is not None:
            if not isinstance(self.prestige, (int, float)) or isinstance(
                self.prestige, bool
            ):
                raise MutationError(
                    f"add_node prestige must be a number, got {self.prestige!r}"
                )
            if self.prestige < 0:
                raise MutationError(
                    f"add_node prestige must be >= 0, got {self.prestige!r}"
                )
            object.__setattr__(self, "prestige", float(self.prestige))
        if self.ref is not None:
            ref = tuple(self.ref)
            if len(ref) != 2 or not isinstance(ref[0], str):
                raise MutationError(
                    f"add_node ref must be (table, primary_key), got {self.ref!r}"
                )
            if not isinstance(ref[1], (int, str)) or isinstance(ref[1], bool):
                raise MutationError(
                    f"add_node ref primary key must be int or str, got {ref[1]!r}"
                )
            object.__setattr__(self, "ref", ref)


@dataclass(frozen=True)
class AddEdge:
    """Add a forward edge ``u -> v``; the derived backward edge and the
    indegree-dependent reweighting happen inside the dataset."""

    u: int
    v: int
    weight: float = DEFAULT_FORWARD_WEIGHT

    def __post_init__(self) -> None:
        _check_endpoint(self.u, "add_edge u")
        _check_endpoint(self.v, "add_edge v")
        if not isinstance(self.weight, (int, float)) or isinstance(self.weight, bool):
            raise MutationError(
                f"add_edge weight must be a number, got {self.weight!r}"
            )
        if self.weight <= 0.0:
            raise MutationError(f"add_edge weight must be > 0, got {self.weight!r}")
        object.__setattr__(self, "weight", float(self.weight))


@dataclass(frozen=True)
class RemoveEdge:
    """Remove one forward edge ``u -> v`` (the earliest-inserted match;
    ``weight`` narrows the match among parallel edges)."""

    u: int
    v: int
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        _check_endpoint(self.u, "remove_edge u")
        _check_endpoint(self.v, "remove_edge v")
        if self.weight is not None:
            if not isinstance(self.weight, (int, float)) or isinstance(
                self.weight, bool
            ):
                raise MutationError(
                    f"remove_edge weight must be a number, got {self.weight!r}"
                )
            object.__setattr__(self, "weight", float(self.weight))


@dataclass(frozen=True)
class UpdateText:
    """Replace the indexed text terms of ``node`` with ``text``'s tokens
    (relation-name postings are untouched)."""

    node: int
    text: str

    def __post_init__(self) -> None:
        _check_endpoint(self.node, "update_text node")
        if not isinstance(self.text, str):
            raise MutationError(
                f"update_text text must be a string, got {type(self.text).__name__}"
            )


Mutation = Union[AddNode, AddEdge, RemoveEdge, UpdateText]

_OPS = {
    "add_node": AddNode,
    "add_edge": AddEdge,
    "remove_edge": RemoveEdge,
    "update_text": UpdateText,
}
_OP_OF = {cls: op for op, cls in _OPS.items()}
_FIELDS = {
    "add_node": frozenset({"label", "table", "ref", "text", "prestige"}),
    "add_edge": frozenset({"u", "v", "weight"}),
    "remove_edge": frozenset({"u", "v", "weight"}),
    "update_text": frozenset({"node", "text"}),
}


def _check_endpoint(value, what: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise MutationError(f"{what} must be a node id (int), got {value!r}")


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one committed mutation batch.

    ``new_nodes`` lists the real ids assigned to the batch's
    :class:`AddNode` mutations, in batch order; ``cache_purged`` counts
    the stale result-cache entries dropped eagerly (version keying
    already made them unreachable).
    """

    dataset: str
    version: int
    applied: int
    new_nodes: tuple[int, ...] = field(default=())
    compacted: bool = False
    cache_purged: int = 0

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "version": self.version,
            "applied": self.applied,
            "new_nodes": list(self.new_nodes),
            "compacted": self.compacted,
            "cache_purged": self.cache_purged,
        }


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
def mutation_to_dict(mutation: Mutation) -> dict:
    """Flatten one mutation to a JSON-safe ``{"op": ..., ...}`` dict."""
    try:
        op = _OP_OF[type(mutation)]
    except KeyError:
        raise MutationError(
            f"not a mutation: {type(mutation).__name__}"
        ) from None
    if isinstance(mutation, AddNode):
        return {
            "op": op,
            "label": mutation.label,
            "table": mutation.table,
            "ref": list(mutation.ref) if mutation.ref is not None else None,
            "text": mutation.text,
            "prestige": mutation.prestige,
        }
    if isinstance(mutation, UpdateText):
        return {"op": op, "node": mutation.node, "text": mutation.text}
    return {"op": op, "u": mutation.u, "v": mutation.v, "weight": mutation.weight}


def mutation_from_dict(data: dict) -> Mutation:
    """Rebuild a mutation from its wire dict, validating shape.

    Unknown ops and unknown fields raise :class:`MutationError` — a
    malformed mutation must fail at the boundary, not as an exotic
    ``TypeError`` inside the overlay maintenance code.
    """
    if not isinstance(data, dict):
        raise MutationError(
            f"mutation must be a JSON object, got {type(data).__name__}"
        )
    op = data.get("op")
    cls = _OPS.get(op)
    if cls is None:
        raise MutationError(
            f"unknown mutation op {op!r}; expected one of {sorted(_OPS)}"
        )
    fields_ = {key: value for key, value in data.items() if key != "op"}
    unknown = sorted(set(fields_) - _FIELDS[op])
    if unknown:
        raise MutationError(f"{op} has unknown fields: {', '.join(unknown)}")
    if op == "add_node" and fields_.get("ref") is not None:
        ref = fields_["ref"]
        if not isinstance(ref, (list, tuple)) or len(ref) != 2:
            raise MutationError(
                f"add_node ref must be [table, primary_key], got {ref!r}"
            )
        fields_["ref"] = tuple(ref)
    if op == "remove_edge":
        fields_.setdefault("weight", None)
    try:
        return cls(**fields_)
    except MutationError:
        raise
    except TypeError as exc:  # missing required field
        raise MutationError(f"malformed {op} mutation: {exc}") from None


def coerce_mutation(raw) -> Mutation:
    """Accept either a prepared mutation object or its wire dict."""
    if isinstance(raw, (AddNode, AddEdge, RemoveEdge, UpdateText)):
        return raw
    return mutation_from_dict(raw)


def coerce_mutations(raws) -> list[Mutation]:
    """Coerce a whole batch, failing fast before anything is applied."""
    return [coerce_mutation(raw) for raw in raws]
