"""Tuple sets: exact keyword-subset partition per relation."""

import pytest

from repro.sparse.tuple_sets import TupleSets


@pytest.fixture
def tuple_sets(toy_db) -> TupleSets:
    return TupleSets(toy_db, ("transaction", "gray"))


class TestMatching:
    def test_matched_keywords_per_tuple(self, tuple_sets):
        assert tuple_sets.matched("paper", 1) == {"transaction"}
        assert tuple_sets.matched("paper", 2) == frozenset()
        assert tuple_sets.matched("author", 1) == {"gray"}

    def test_partition_is_exact(self, tuple_sets):
        transaction_papers = tuple_sets.members("paper", frozenset({"transaction"}))
        assert sorted(transaction_papers) == [1, 4]
        both = tuple_sets.members("paper", frozenset({"transaction", "gray"}))
        assert both == []

    def test_free_members_are_all_tuples(self, tuple_sets, toy_db):
        assert len(tuple_sets.free_members("paper")) == toy_db.count("paper")

    def test_has(self, tuple_sets):
        assert tuple_sets.has("paper", frozenset({"transaction"}))
        assert not tuple_sets.has("paper", frozenset({"gray"}))

    def test_nonempty_subsets(self, tuple_sets):
        assert tuple_sets.nonempty_subsets("paper") == [frozenset({"transaction"})]
        assert tuple_sets.nonempty_subsets("writes") == []

    def test_in_tuple_set(self, tuple_sets):
        assert tuple_sets.in_tuple_set("paper", 1, frozenset({"transaction"}))
        assert not tuple_sets.in_tuple_set("paper", 2, frozenset({"transaction"}))
        # Free tuple sets admit everything.
        assert tuple_sets.in_tuple_set("paper", 2, frozenset())

    def test_relation_name_matches_all_tuples(self, toy_db):
        ts = TupleSets(toy_db, ("paper", "gray"))
        papers = ts.members("paper", frozenset({"paper"}))
        assert len(papers) == toy_db.count("paper")

    def test_duplicate_keywords_rejected(self, toy_db):
        with pytest.raises(ValueError):
            TupleSets(toy_db, ("gray", "Gray"))
