"""PathTable: distances, sp pointers, ATTACH propagation."""

from math import inf

import pytest

from repro.core.pathtable import PathTable

from tests.helpers import build_graph


def chain_graph():
    # 0 -> 1 -> 2 (plus derived backward edges).
    return build_graph(3, [(0, 1), (1, 2)])


class TestSeeding:
    def test_seed_all(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2}), frozenset({0, 1})])
        seeds = table.seed_all()
        assert seeds == {0, 1, 2}
        assert table.dist(2, 0) == 0.0
        assert table.dist(0, 1) == 0.0
        assert table.dist(1, 1) == 0.0
        assert table.dist(0, 0) == inf

    def test_seed_returns_matched_indices(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2}), frozenset({2})])
        assert table.seed(2) == (0, 1)
        assert table.seed(0) == ()

    def test_requires_a_keyword(self):
        with pytest.raises(ValueError):
            PathTable(chain_graph(), [])


class TestExploreEdge:
    def test_simple_relax(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2})])
        table.seed_all()
        completions = table.explore_edge(1, 2, 1.0)
        assert table.dist(1, 0) == pytest.approx(1.0)
        assert completions == {1}
        assert table.is_complete(1)

    def test_no_improvement_no_completion(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2})])
        table.seed_all()
        table.explore_edge(1, 2, 1.0)
        assert table.explore_edge(1, 2, 5.0) == set()
        assert table.dist(1, 0) == pytest.approx(1.0)

    def test_better_parallel_edge_improves(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2})])
        table.seed_all()
        table.explore_edge(1, 2, 3.0)
        completions = table.explore_edge(1, 2, 1.0)
        assert completions == {1}
        assert table.dist(1, 0) == pytest.approx(1.0)

    def test_attach_propagates_to_ancestors(self):
        # Explore 0->1 first (dist unknown), then 1->2: node 0 must be
        # updated transitively through the explored-parents map.
        g = chain_graph()
        table = PathTable(g, [frozenset({2})])
        table.seed_all()
        table.explore_edge(0, 1, 1.0)
        assert table.dist(0, 0) == inf
        completions = table.explore_edge(1, 2, 1.0)
        assert table.dist(0, 0) == pytest.approx(2.0)
        assert completions == {1, 0}

    def test_propagation_chooses_best_path(self):
        # Diamond: 0->1->3, 0->2->3, with 0->2 cheaper overall.
        g = build_graph(4, [(0, 1, 1.0), (1, 3, 5.0), (0, 2, 1.0), (2, 3, 1.0)])
        table = PathTable(g, [frozenset({3})])
        table.seed_all()
        table.explore_edge(0, 1, 1.0)
        table.explore_edge(0, 2, 1.0)
        table.explore_edge(1, 3, 5.0)
        assert table.dist(0, 0) == pytest.approx(6.0)
        table.explore_edge(2, 3, 1.0)
        assert table.dist(0, 0) == pytest.approx(2.0)

    def test_rejects_nonpositive_weight(self):
        table = PathTable(chain_graph(), [frozenset({2})])
        with pytest.raises(ValueError):
            table.explore_edge(0, 1, 0.0)

    def test_dist_change_callback(self):
        g = chain_graph()
        changed = []
        table = PathTable(
            g, [frozenset({2})], on_dist_change=changed.append
        )
        table.seed_all()
        table.explore_edge(1, 2, 1.0)
        table.explore_edge(0, 1, 1.0)
        assert 1 in changed and 0 in changed


class TestCompleteness:
    def test_multi_keyword(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({0}), frozenset({2})])
        table.seed_all()
        assert not table.is_complete(1)
        table.explore_edge(1, 2, 1.0)
        assert not table.is_complete(1)
        # Backward edge 1 -> 0 gives the path to keyword 0.
        table.explore_edge(1, 0, 1.0)
        assert table.is_complete(1)
        assert table.known_keywords(1) == 2

    def test_min_dist(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({0}), frozenset({2})])
        table.seed_all()
        table.explore_edge(1, 2, 3.0)
        assert table.min_dist(1) == pytest.approx(3.0)
        table.explore_edge(1, 0, 1.0)
        assert table.min_dist(1) == pytest.approx(1.0)


class TestBuildPaths:
    def test_paths_and_true_weights(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2}), frozenset({0})])
        table.seed_all()
        table.explore_edge(1, 2, 1.0)
        table.explore_edge(1, 0, 1.0)
        paths, weights = table.build_paths(1)
        assert paths == [(1, 2), (1, 0)]
        assert weights == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_seed_root_has_trivial_path(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2})])
        table.seed_all()
        paths, weights = table.build_paths(2)
        assert paths == [(2,)]
        assert weights == [0.0]

    def test_incomplete_root_rejected(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2}), frozenset({0})])
        table.seed_all()
        with pytest.raises(ValueError):
            table.build_paths(1)

    def test_parents_map_exposed(self):
        g = chain_graph()
        table = PathTable(g, [frozenset({2})])
        table.seed_all()
        table.explore_edge(1, 2, 1.0)
        assert table.parents_map() == {2: {1: 1.0}}
        assert table.parents_of(2) == {1: 1.0}
