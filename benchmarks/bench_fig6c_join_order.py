"""FIG6c bench: SI vs Bidirectional by origin-size band combination.

Paper Figure 6(c): "the speedup increases as the difference between the
origin sizes of keywords increases".  Asserted shape: the most skewed
combination's ratio exceeds the uniform-rare one (both on gen-time),
i.e. skew helps Bidirectional — the join-order claim.
"""

from repro.experiments.fig6 import run_fig6c

from conftest import as_float, run_report


def test_fig6c_join_order(benchmark):
    report = run_report(benchmark, run_fig6c)
    rows = {row[0]: row for row in report.rows}
    assert set(rows) == set("ABCDEFGH")

    def gen_ratio(label):
        value = rows[label][4]
        return as_float(value) if value != "-" else None

    uniform = gen_ratio("A")  # (T,T,T,T)
    skewed = gen_ratio("H")  # (T,T,T,L)
    assert uniform is not None and skewed is not None
    assert skewed > uniform, (
        "Bidirectional's advantage must grow with origin-size skew"
    )
