"""Answer-tree model (paper Sections 2.2, 3, 4.2.3).

An answer to a keyword query is a minimal rooted directed tree embedded
in the search graph, containing at least one node matching each
keyword.  We represent it by its root and, per keyword, the root-to-
matched-node path — the exact object the search algorithms construct
from their ``sp`` pointers; the tree is the union of those paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.core.stats import SearchStats

__all__ = ["AnswerTree", "OutputAnswer", "SearchResult", "is_minimal_rooting"]

#: Undirected-skeleton signature: rotations of the same tree share it
#: (paper Section 4.2.3 discards lower-scoring duplicates).
Signature = tuple[frozenset, frozenset]


def is_minimal_rooting(root: int, paths: Sequence[Sequence[int]]) -> bool:
    """Paper Section 3's minimality rule.

    A tree whose root has a single child, with every keyword matched at
    a non-root node, is non-minimal: dropping the root yields another
    answer with a better score, so the rooted tree is discarded.
    """
    children = {path[1] for path in paths if len(path) > 1}
    if len(children) > 1:
        return True
    root_matches_keyword = any(len(path) == 1 for path in paths)
    if root_matches_keyword:
        return True
    # Zero children means a single-node tree, which only happens when
    # some path has length 1, handled above; so here children == 1.
    return False


@dataclass(frozen=True)
class AnswerTree:
    """A scored answer tree.

    Attributes
    ----------
    root:
        Root node id.
    paths:
        One root-to-matched-node path per query keyword, in keyword
        order.  ``paths[i][0] == root`` and ``paths[i][-1]`` matches
        keyword ``i``.
    dists:
        Per-keyword path weight ``s(T, t_i)`` (paper Section 2.3).
    edge_score:
        ``E = sum_i s(T, t_i)``; smaller is better.
    node_score:
        ``N``: sum of prestige over the root and the tree's leaf nodes.
    score:
        Overall relevance ``N**lambda / (1 + E)``; larger is better
        (DESIGN.md Section 3 records this normalization of the paper's
        ``E N^lambda``).
    """

    root: int
    paths: tuple[tuple[int, ...], ...]
    dists: tuple[float, ...]
    edge_score: float
    node_score: float
    score: float

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def nodes(self) -> frozenset[int]:
        return frozenset(node for path in self.paths for node in path)

    def edges(self) -> frozenset[tuple[int, int]]:
        """Directed (parent, child) edges — the union of the paths."""
        out: set[tuple[int, int]] = set()
        for path in self.paths:
            out.update(zip(path, path[1:]))
        return frozenset(out)

    def children(self, node: int) -> frozenset[int]:
        return frozenset(child for parent, child in self.edges() if parent == node)

    def leaves(self) -> frozenset[int]:
        """Nodes with no children.  A single-node tree's root is a leaf."""
        edges = self.edges()
        if not edges:
            return frozenset({self.root})
        parents = {parent for parent, _ in edges}
        return frozenset(node for node in self.nodes() if node not in parents)

    def matched_nodes(self) -> tuple[int, ...]:
        """The node matching each keyword (path endpoints, keyword order)."""
        return tuple(path[-1] for path in self.paths)

    def size(self) -> int:
        """Number of distinct nodes (paper's "Ans Size" column)."""
        return len(self.nodes())

    def num_edges(self) -> int:
        return len(self.edges())

    def signature(self) -> Signature:
        """Rotation-invariant identity: node set + undirected edge set."""
        undirected = frozenset(
            frozenset((parent, child)) for parent, child in self.edges()
        )
        return (self.nodes(), undirected)

    def is_minimal(self) -> bool:
        return is_minimal_rooting(self.root, self.paths)

    # ------------------------------------------------------------------
    def describe(self, graph=None) -> str:
        """One-line description; labels resolved through ``graph`` if given."""

        def name(node: int) -> str:
            if graph is not None:
                label = graph.label(node)
                if label:
                    return f"{node}:{label}"
            return str(node)

        parts = [
            "->".join(name(node) for node in path) for path in self.paths
        ]
        return f"[root {name(self.root)} | score {self.score:.4g}] " + " ; ".join(parts)


@dataclass(frozen=True)
class OutputAnswer:
    """An answer plus the instants it was generated and output.

    The paper's Section 5.3 "Gen time" vs "Out time" distinction: an
    answer may be generated early but output only once the upper bound
    proves nothing better is coming.  Both wall-clock seconds (since
    search start) and deterministic pop counts are recorded.
    """

    tree: AnswerTree
    generated_at: float
    generated_pops: int
    output_at: float
    output_pops: int
    generated_touched: int = 0
    output_touched: int = 0

    @property
    def score(self) -> float:
        return self.tree.score


@dataclass
class SearchResult:
    """Everything a search run produced, in output order.

    ``complete`` is False when the run was stopped by a cooperative
    :class:`~repro.core.cancellation.CancellationToken` (deadline or
    explicit cancel); ``cancel_reason`` then records why.  A cancelled
    result's ``answers`` are exactly the prefix the Section 4.5 bound
    had already certified — buffered-but-unproven answers are *not*
    drained, so a cancelled run's answer stream is a prefix of the
    uncancelled run's (the property the cancellation tests assert).
    """

    algorithm: str
    keywords: tuple[str, ...]
    answers: list[OutputAnswer] = field(default_factory=list)
    stats: Optional[SearchStats] = None
    complete: bool = True
    cancel_reason: Optional[str] = None
    #: Structured explain report (JSON-safe), present only when the
    #: query ran with explain enabled; see
    #: :func:`repro.telemetry.accounting.build_explain_report`.
    explain: Optional[dict] = None

    def trees(self) -> list[AnswerTree]:
        return [answer.tree for answer in self.answers]

    def scores(self) -> list[float]:
        return [answer.score for answer in self.answers]

    def signatures(self) -> list[Signature]:
        return [answer.tree.signature() for answer in self.answers]

    def node_sets(self) -> list[frozenset[int]]:
        return [answer.tree.nodes() for answer in self.answers]

    def best(self) -> Optional[OutputAnswer]:
        return self.answers[0] if self.answers else None

    def __iter__(self) -> Iterator[OutputAnswer]:
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)
