"""Process-pool sharding tier (ROADMAP: multi-core scale-out).

The thread-based :class:`~repro.service.QueryService` batch executor
serializes pure-Python search on the GIL; this package is the tier
above it that finally lets a batch use every core:

* :class:`ShardedQueryService` — same facade as ``QueryService``
  (``search`` / ``search_many`` / ``metrics`` / ``warmup`` / context
  manager), dispatching over worker processes.
* :class:`~repro.cluster.router.ShardRouter` — deterministic
  dataset -> worker placement with replica fan-out for hot datasets.
* :class:`~repro.cluster.pool.WorkerPool` — supervised processes:
  health checks, restart-on-crash with structured error responses for
  lost in-flight requests, graceful drain on close.
* :mod:`repro.cluster.worker` — the process entrypoint; each worker
  warms a private ``QueryService`` from
  :mod:`repro.service.snapshot` files (disk load, never
  ``from_database``) and owns a private result cache.
* :func:`~repro.cluster.metrics.merge_metrics` — per-worker metrics
  merged into one cluster view with exact percentiles.
* :mod:`repro.cluster.http` — stdlib HTTP front-end (``/search``,
  ``/batch``, ``/metrics``, ``/healthz``) serving either tier.

Only primitives cross the process boundary: snapshot paths, request
dicts, response dicts (:mod:`repro.service.wire`).  See
``examples/cluster_quickstart.py`` for the end-to-end tour.
"""

from repro.cluster.metrics import merge_metrics
from repro.cluster.pool import WorkerPool
from repro.cluster.router import ShardRouter
from repro.cluster.service import ShardedQueryService

__all__ = [
    "ShardedQueryService",
    "ShardRouter",
    "WorkerPool",
    "merge_metrics",
]
