"""Origin-size bands and scaling."""

from math import inf

import pytest

from repro.workload.bands import BAND_ORDER, OriginBands


class TestPaperBands:
    def test_paper_thresholds(self):
        bands = OriginBands()
        assert bands.classify(100) == "T"
        assert bands.classify(1500) == "S"
        assert bands.classify(3000) == "M"
        assert bands.classify(10000) == "L"

    def test_gaps_between_bands(self):
        bands = OriginBands()
        assert bands.classify(700) == "-"   # between tiny and small
        assert bands.classify(2200) == "-"  # between small and medium

    def test_origin_classes(self):
        bands = OriginBands()
        assert bands.is_small_origin(500)
        assert not bands.is_small_origin(1500)
        assert bands.is_large_origin(9000)
        assert not bands.is_large_origin(5000)

    def test_classify_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            OriginBands().classify(0)


class TestScaledBands:
    def test_proportional_at_paper_scale(self):
        bands = OriginBands.scaled_for(2_000_000)
        assert bands.tiny[1] == pytest.approx(500)
        assert bands.large[0] == pytest.approx(7000)

    def test_small_graph_floors_keep_bands_disjoint(self):
        bands = OriginBands.scaled_for(3000)
        ranges = bands.ranges()
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 < lo2

    def test_bands_cover_all_codes(self):
        bands = OriginBands.scaled_for(5000)
        seen = set()
        for f in range(1, 200):
            seen.add(bands.classify(f))
        seen.add(bands.classify(10_000))
        assert set(BAND_ORDER) <= seen

    def test_range_for(self):
        bands = OriginBands()
        assert bands.range_for("T") == bands.tiny
        assert bands.range_for("L")[1] == inf
        with pytest.raises(ValueError):
            bands.range_for("X")

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            OriginBands.scaled_for(0)
