"""Quickstart for the live mutation subsystem (:mod:`repro.live`).

The static-graph assumption, dropped: insert a brand-new paper into a
warm DBLP-style dataset while the service keeps answering queries, and
watch the new answer appear — no rebuild, no restart.

1. build a DBLP engine and register it with a ``QueryService``,
2. query for a title that does not exist yet (structured 404),
3. ``apply`` a mutation batch inserting the paper, its authorship row
   and the conference edge — one commit, one new epoch,
4. the same query now returns the paper; the result cache was
   version-keyed, so no stale answer survived the commit,
5. an engine captured *before* the commit still answers from its old
   epoch (MVCC: in-flight searches are never perturbed),
6. compact the overlay back to flat arrays and write a versioned disk
   snapshot a worker fleet could hot-reload from.

Run:  python examples/live_updates.py
"""

import tempfile
from pathlib import Path

from repro import KeywordSearchEngine, QueryService
from repro.datasets import DblpConfig, make_dblp
from repro.live.mutations import AddEdge, AddNode
from repro.service.snapshot import snapshot_info


def main() -> None:
    # ------------------------------------------------------------------
    # 1. warm service over a synthetic DBLP
    # ------------------------------------------------------------------
    engine = KeywordSearchEngine.from_database(make_dblp(DblpConfig()))
    graph = engine.graph
    service = QueryService()
    service.register_engine("dblp", engine)
    print(
        f"serving dblp: {graph.num_nodes} nodes, "
        f"{graph.num_forward_edges} forward edges, version "
        f"{service.dataset_version('dblp')}"
    )

    # ------------------------------------------------------------------
    # 2. the paper does not exist yet
    # ------------------------------------------------------------------
    query = "bidirectional expansion"
    before = service.search("dblp", query)
    print(f"\nsearch {query!r} before insert -> [{before.error_type}] {before.error}")

    # ------------------------------------------------------------------
    # 3. insert it live: paper + writes row + conference edge
    # ------------------------------------------------------------------
    author = next(n for n in graph.nodes() if graph.table(n) == "author")
    conference = next(n for n in graph.nodes() if graph.table(n) == "conference")
    old_engine = service.engine("dblp")  # captured pre-commit (step 5)
    result = service.apply(
        "dblp",
        [
            AddNode(
                label="Bidirectional Expansion For Keyword Search",
                table="paper",
                ref=("paper", 10_001),
                text="Bidirectional Expansion For Keyword Search",
            ),
            AddNode(label="writes:10001", table="writes", ref=("writes", 10_001)),
            AddEdge(u=-1, v=conference),   # paper -> conference
            AddEdge(u=-2, v=-1),           # writes -> paper
            AddEdge(u=-2, v=author),       # writes -> author
        ],
    )
    print(
        f"\napplied {result.applied} mutations -> version {result.version}, "
        f"new nodes {list(result.new_nodes)}, "
        f"{result.cache_purged} stale cache entries dropped"
    )

    # ------------------------------------------------------------------
    # 4. the new answer appears immediately
    # ------------------------------------------------------------------
    after = service.search("dblp", query)
    current = service.engine("dblp").graph
    print(f"\nsearch {query!r} after insert -> {len(after.result.answers)} answers:")
    for answer in after.result.answers[:3]:
        print(
            f"  root {current.label(answer.tree.root)!r} "
            f"(score {answer.tree.score:.4f})"
        )
    joined = service.search("dblp", f"expansion {current.label(author).split()[0]}")
    print(
        f"join with its author -> "
        f"{'found' if joined.ok and joined.result.answers else 'no answer'}"
    )

    # ------------------------------------------------------------------
    # 5. MVCC: the pre-commit engine still serves its epoch
    # ------------------------------------------------------------------
    try:
        old_engine.search(query)
        print("\nold epoch unexpectedly knows the new paper!")
    except LookupError:
        print(
            "\nengine captured before the commit still raises "
            "KeywordNotFoundError for the new title — in-flight searches "
            "finish on their own epoch"
        )

    # ------------------------------------------------------------------
    # 6. compact + versioned snapshot for fleet reloads
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = service.save_snapshot("dblp", Path(tmp) / "dblp-live.snap")
        info = snapshot_info(path)
        print(
            f"\nsnapshot after compaction: version "
            f"{info['dataset_version']}, digest "
            f"{info['content_digest'][:12]}..., "
            f"{info['file_bytes'] / 1024:.0f} KiB "
            f"(a ShardedQueryService.reload() would no-op on replicas "
            f"already at this digest)"
        )
    service.close()


if __name__ == "__main__":
    main()
