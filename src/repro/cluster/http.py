"""Stdlib HTTP front-end for a query service (ROADMAP follow-up).

``QueryRequest`` / ``QueryResponse`` were wire-shaped from the start —
structured errors, no exceptions across the boundary, JSON-ready
metrics — so the endpoint is a thin translation layer over either a
:class:`~repro.service.QueryService` or a
:class:`~repro.cluster.ShardedQueryService` (anything exposing
``search`` / ``search_many`` / ``metrics`` / ``datasets``).  Pure
stdlib: ``http.server.ThreadingHTTPServer``, no new dependencies.

Routes
------
``POST /search``
    Body: one request object (:func:`repro.service.wire.request_from_dict`
    shape, e.g. ``{"dataset": "dblp", "query": "gray transaction",
    "k": 5}``).  Response: one response object; HTTP status mirrors the
    structured ``error_type`` (404 unknown dataset / absent keyword,
    400 malformed, 504 deadline, 503 crashed worker, 500 otherwise).
``POST /batch``
    Body: ``{"requests": [...], "timeout": seconds?}``.  Always 200:
    per-item errors live inside the response objects, matching
    ``search_many``'s never-raise contract.
``GET /metrics``
    The service's metrics dict.
``GET /healthz``
    ``{"status": "ok", "datasets": [...]}`` plus fleet liveness when
    the service exposes ``health()`` (the sharded tier does); degrades
    to 503 when workers are down.

Use :func:`make_server` + ``serve_forever`` in a thread (see
``examples/cluster_quickstart.py``), or :func:`serve` to block.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import (
    DeadlineExceededError,
    EmptyQueryError,
    KeywordNotFoundError,
    UnknownDatasetError,
    WorkerCrashedError,
)
from repro.service.wire import (
    error_response_dict,
    request_from_dict,
    response_to_dict,
)

__all__ = ["QueryHTTPServer", "make_server", "serve", "status_for_error"]

#: Structured error type -> HTTP status.
_ERROR_STATUS = {
    UnknownDatasetError.__name__: 404,
    KeywordNotFoundError.__name__: 404,
    EmptyQueryError.__name__: 400,
    ValueError.__name__: 400,
    TypeError.__name__: 400,
    DeadlineExceededError.__name__: 504,
    WorkerCrashedError.__name__: 503,
}


def status_for_error(error_type: Optional[str]) -> int:
    """HTTP status for a structured ``QueryResponse.error_type``."""
    if error_type is None:
        return 200
    return _ERROR_STATUS.get(error_type, 500)


class QueryHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one query service."""

    daemon_threads = True

    def __init__(self, address, service, *, quiet: bool = True) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-query-http/1.0"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, error_type: str) -> None:
        self._send_json(status, {"error": message, "error_type": error_type})

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body is empty; expected a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                self._handle_healthz()
            elif self.path == "/metrics":
                self._send_json(200, self.server.service.metrics())
            else:
                self._send_error_json(
                    404, f"no route {self.path!r}", "NotFoundError"
                )
        except Exception as exc:  # pragma: no cover - handler backstop
            self._send_error_json(500, str(exc), type(exc).__name__)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/search":
                self._handle_search()
            elif self.path == "/batch":
                self._handle_batch()
            else:
                self._send_error_json(
                    404, f"no route {self.path!r}", "NotFoundError"
                )
        except ValueError as exc:
            self._send_error_json(400, str(exc), type(exc).__name__)
        except Exception as exc:  # pragma: no cover - handler backstop
            self._send_error_json(500, str(exc), type(exc).__name__)

    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        service = self.server.service
        payload = {"status": "ok", "datasets": service.datasets()}
        status = 200
        health = getattr(service, "health", None)
        if callable(health):
            fleet = health()
            payload.update(fleet)
            if fleet.get("alive", 0) < fleet.get("workers", 0):
                payload["status"] = "degraded"
                status = 503
        self._send_json(status, payload)

    def _handle_search(self) -> None:
        request = request_from_dict(self._read_json())
        response = self.server.service.search(request)
        self._send_json(
            status_for_error(response.error_type), response_to_dict(response)
        )

    def _handle_batch(self) -> None:
        body = self._read_json()
        if not isinstance(body, dict) or "requests" not in body:
            raise ValueError('batch body must be {"requests": [...]}')
        raw_items = body["requests"]
        if not isinstance(raw_items, list):
            raise ValueError('"requests" must be a list of request objects')
        timeout = body.get("timeout")

        # Convert what converts; malformed items keep their slots as
        # structured errors, mirroring search_many's contract.
        slots: list[Optional[dict]] = [None] * len(raw_items)
        requests, positions = [], []
        for i, raw in enumerate(raw_items):
            try:
                requests.append(request_from_dict(raw))
                positions.append(i)
            except Exception as exc:
                slots[i] = error_response_dict(raw, str(exc), type(exc).__name__)
        responses = self.server.service.search_many(requests, timeout=timeout)
        for position, response in zip(positions, responses):
            slots[position] = response_to_dict(response)
        self._send_json(200, {"responses": slots})


def make_server(
    service, host: str = "127.0.0.1", port: int = 0, *, quiet: bool = True
) -> QueryHTTPServer:
    """Build (but do not run) a server; ``port=0`` picks a free port.

    The bound address is ``server.server_address``.  Run with
    ``server.serve_forever()`` (often in a thread) and stop with
    ``server.shutdown()``.
    """
    return QueryHTTPServer((host, port), service, quiet=quiet)


def serve(
    service, host: str = "127.0.0.1", port: int = 8080, *, quiet: bool = False
) -> None:  # pragma: no cover - blocking convenience
    """Serve ``service`` until interrupted."""
    server = make_server(service, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving {type(service).__name__} on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
