"""repro — reproduction of "Bidirectional Expansion For Keyword Search on
Graph Databases" (Kacholia et al., VLDB 2005; the BANKS-II paper).

Public API highlights
---------------------
:class:`~repro.core.engine.KeywordSearchEngine`
    One-call facade: database -> graph + prestige + index -> search.
:class:`~repro.core.bidirectional.BidirectionalSearch`
    The paper's algorithm (incoming + outgoing iterators, spreading
    activation, bounded top-k output).
:class:`~repro.core.backward_si.SingleIteratorBackwardSearch`,
:class:`~repro.core.backward_mi.BackwardExpandingSearch`
    The SI-/MI-Backward baselines of Sections 3 and 4.6.
:mod:`repro.sparse`
    The candidate-network Sparse baseline (Hristidis et al.).
:mod:`repro.datasets`
    Synthetic DBLP/IMDB/US-Patent-shaped databases.
:mod:`repro.service`
    Deployment layer: :class:`~repro.service.QueryService` engine
    registry, LRU+TTL result cache, concurrent batch execution with
    per-request deadlines, disk snapshots and exported metrics.
    Deadlines are enforced by cooperative cancellation
    (:class:`~repro.core.cancellation.CancellationToken` threaded
    through every search loop): an expired or explicitly cancelled
    query stops within a couple of check intervals, frees its worker,
    and can return the answers released so far as a ``complete=False``
    partial result.
:mod:`repro.cluster`
    Multi-core scale-out: :class:`~repro.cluster.ShardedQueryService`
    dispatches the same ``search`` / ``search_many`` facade over a
    supervised pool of snapshot-warmed worker processes (deterministic
    shard routing, replica fan-out, restart-on-crash with structured
    error responses, merged cluster metrics) plus a stdlib HTTP
    front-end (``repro.cluster.http``).
:mod:`repro.live`
    Live mutation subsystem: :class:`~repro.live.MutableDataset`
    applies structured mutations (``add_node`` / ``add_edge`` /
    ``remove_edge`` / ``update_text``) as copy-on-write overlays over
    the frozen graph + index, committing monotone-versioned MVCC
    epochs — in-flight searches keep their epoch, the service tiers
    key result caches by version, and ``ShardedQueryService.apply``
    broadcasts commits to every replica without a process restart.
:mod:`repro.wal`
    Durability: a per-dataset append-only mutation log
    (:class:`~repro.wal.MutationLog`) journaling every commit
    write-ahead, with crash-recovery replay — a kill-9'd process or
    replica recovers to exactly the last durable epoch
    (``QueryService.attach_wal``, ``ShardedQueryService(wal_dir=...)``,
    :meth:`~repro.live.MutableDataset.replay`).
:mod:`repro.experiments`
    Harness regenerating every table and figure of Section 5
    (``python -m repro.experiments --list``).
"""

from repro.core import (
    ALGORITHMS,
    AnswerTree,
    BackwardExpandingSearch,
    BidirectionalSearch,
    CancellationToken,
    DEFAULT_PARAMS,
    KeywordSearchEngine,
    OutputAnswer,
    SearchParams,
    SearchResult,
    SearchStats,
    Scorer,
    SingleIteratorBackwardSearch,
    exhaustive_answers,
    parse_query,
)
from repro.cluster import ShardedQueryService
from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    EmptyQueryError,
    KeywordNotFoundError,
    MutationError,
    PoolClosedError,
    ReproError,
    SearchCancelledError,
    ServiceError,
    SnapshotError,
    UnknownDatasetError,
    WalError,
    WorkerCrashedError,
)
from repro.graph import (
    DataGraph,
    SearchGraph,
    build_data_graph,
    build_search_graph,
    compute_prestige,
)
from repro.index import InvertedIndex, build_index, tokenize
from repro.live import (
    AddEdge,
    AddNode,
    MutableDataset,
    RemoveEdge,
    UpdateText,
)
from repro.relational import Database, ForeignKey, Schema, Table
from repro.render import render_result, render_tree
from repro.service import (
    QueryRequest,
    QueryResponse,
    QueryService,
    ResultCache,
    load_snapshot,
    save_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ALGORITHMS",
    "AnswerTree",
    "BackwardExpandingSearch",
    "BidirectionalSearch",
    "CancellationToken",
    "DEFAULT_PARAMS",
    "KeywordSearchEngine",
    "OutputAnswer",
    "SearchParams",
    "SearchResult",
    "SearchStats",
    "Scorer",
    "SingleIteratorBackwardSearch",
    "exhaustive_answers",
    "parse_query",
    "ClusterError",
    "DeadlineExceededError",
    "EmptyQueryError",
    "KeywordNotFoundError",
    "MutationError",
    "PoolClosedError",
    "ReproError",
    "SearchCancelledError",
    "ServiceError",
    "ShardedQueryService",
    "SnapshotError",
    "UnknownDatasetError",
    "WalError",
    "WorkerCrashedError",
    "DataGraph",
    "SearchGraph",
    "build_data_graph",
    "build_search_graph",
    "compute_prestige",
    "InvertedIndex",
    "build_index",
    "tokenize",
    "AddEdge",
    "AddNode",
    "MutableDataset",
    "RemoveEdge",
    "UpdateText",
    "Database",
    "ForeignKey",
    "Schema",
    "Table",
    "render_result",
    "render_tree",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ResultCache",
    "load_snapshot",
    "save_snapshot",
]
