"""Edge-weight policy of the BANKS graph model (paper Section 2.3).

Forward edges (the direction of foreign keys, containment, IDREFs, ...)
carry a schema-defined weight defaulting to 1.  For every forward edge
``u -> v`` with weight ``w_uv`` the search graph contains a *backward*
edge ``v -> u`` weighted::

    w_vu = w_uv * log2(1 + indegree(v))

where ``indegree(v)`` counts forward edges into ``v``.  Backward edges
out of "hubs" (conference, genre, company nodes with many incident
edges) therefore carry large weights, giving meaningless shortcut paths
through hubs a low relevance score.
"""

from __future__ import annotations

import math

__all__ = ["backward_edge_weight", "DEFAULT_FORWARD_WEIGHT"]

#: Weight of a forward edge when the schema does not override it.
DEFAULT_FORWARD_WEIGHT = 1.0


def backward_edge_weight(forward_weight: float, indegree: int) -> float:
    """Weight of the derived backward edge ``v -> u``.

    Parameters
    ----------
    forward_weight:
        Weight ``w_uv`` of the original forward edge ``u -> v``.
    indegree:
        Number of forward edges pointing into ``v``.

    Returns
    -------
    float
        ``w_uv * log2(1 + indegree)``.  For ``indegree == 1`` (a node
        referenced exactly once) this equals the forward weight, so
        chains are penalty-free while hubs are penalized.

    Raises
    ------
    ValueError
        If ``forward_weight`` is not strictly positive or ``indegree``
        is not at least 1 (a backward edge only exists because at least
        one forward edge points into ``v``).
    """
    if forward_weight <= 0.0:
        raise ValueError(f"forward edge weight must be > 0, got {forward_weight!r}")
    if indegree < 1:
        raise ValueError(f"indegree must be >= 1 for a backward edge, got {indegree!r}")
    return forward_weight * math.log2(1.0 + indegree)
