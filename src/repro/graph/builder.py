"""Relational database -> data graph (paper Section 2.1).

Every tuple becomes a node (including link tuples such as ``writes`` —
see paper Figure 4, where Writes rows are nodes of their own) and every
non-null foreign-key value becomes a forward edge from the referencing
tuple's node to the referenced tuple's node, weighted by the FK's schema
weight.  Backward edges are derived later, at freeze time.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.digraph import DataGraph
from repro.relational.database import Database

__all__ = ["build_data_graph", "build_search_graph", "node_label_for_row"]


def node_label_for_row(table, row) -> str:
    """Display label: the first text-column value, else ``table:pk``."""
    for column in table.text_columns:
        value = row[column]
        if value:
            return str(value)
    return f"{table.name}:{row[table.pk]}"


def build_data_graph(db: Database) -> DataGraph:
    """Build the (mutable) data graph of ``db``.

    Node insertion order is table order then primary-key insertion
    order, so graphs built from the same database are identical — the
    determinism every experiment relies on.
    """
    graph = DataGraph()
    node_of: dict[tuple[str, object], int] = {}
    for table in db.schema.tables:
        for row in db.rows(table.name):
            pk = row[table.pk]
            node = graph.add_node(
                node_label_for_row(table, row),
                table=table.name,
                ref=(table.name, pk),
            )
            node_of[(table.name, pk)] = node
    for fk in db.schema.foreign_keys:
        for row in db.rows(fk.table):
            value = row[fk.column]
            if value is None:
                continue
            src = node_of[(fk.table, row[db.schema.table(fk.table).pk])]
            dst = node_of[(fk.ref_table, value)]
            graph.add_edge(src, dst, fk.weight)
    return graph


def build_search_graph(
    db: Database,
    *,
    prestige: Optional[object] = None,
    compute_prestige: bool = True,
    damping: float = 0.85,
):
    """Build, freeze and (by default) prestige-rank the graph of ``db``.

    Parameters
    ----------
    db:
        Source database.
    prestige:
        Precomputed prestige vector; skips the PageRank computation.
    compute_prestige:
        When True (default) and no vector was given, run the biased
        PageRank of :func:`repro.graph.prestige.compute_prestige`.
        Setting it False leaves uniform prestige — useful in unit tests
        where prestige is irrelevant.
    damping:
        Damping factor forwarded to the prestige computation.
    """
    from repro.graph.prestige import compute_prestige as _compute

    graph = build_data_graph(db).freeze(prestige=prestige)
    if prestige is None and compute_prestige and graph.num_nodes:
        graph = graph.with_prestige(_compute(graph, damping=damping))
    return graph
