"""Quickstart for the query service layer (:mod:`repro.service`).

The production-facing tier above :class:`repro.KeywordSearchEngine`:

1. register a dataset with a :class:`repro.QueryService` and warm it up,
2. snapshot the built graph + prestige + index to disk, then start a
   *second* service straight from the snapshot (no ``from_database``),
3. watch a repeated query come back from the LRU+TTL result cache,
4. run a mixed batch through ``search_many`` and check it agrees with
   sequential calls,
5. export the service metrics dict,
6. miss a deadline on purpose — cooperative cancellation stops the
   search, frees the thread, and (with ``allow_partial=True``) hands
   back the answers the Section 4.5 bound had already certified.

Deadline semantics in one paragraph: ``QueryRequest.timeout`` (seconds,
or ``deadline_ms`` if you think in milliseconds) arms a cancellation
token that the search's pop loop checks every
``SearchParams.cancel_check_interval`` pops.  On expiry the response is
a structured ``error_type="DeadlineExceededError"`` — and because the
search stopped cooperatively, the worker thread is free again within a
couple of check intervals instead of grinding to the end.  With
``allow_partial=True`` the response also carries ``result`` with
``complete=False``: a *prefix* of what the full run would have
returned, in the same order — a deadline can cost you answers, never
reorder them.  Partial results are never cached.  Requests with a
``request_id`` can be cancelled mid-flight via ``cancel(request_id)``
(HTTP: ``DELETE /search/<id>``).

Run:  python examples/service_quickstart.py
"""

import tempfile
import time
from pathlib import Path

from repro import QueryRequest, QueryService, SearchParams
from repro.datasets import DblpConfig, make_dblp

QUERIES = [
    ("paper stream", "bidirectional"),
    ("paper stream", "mi-backward"),
    ("graph query", "si-backward"),
    ("graph query", "bidirectional"),
]


def main() -> None:
    db = make_dblp(DblpConfig())

    # ------------------------------------------------------------------
    # 1. cold service: the engine is built from the database on warmup
    # ------------------------------------------------------------------
    with QueryService(cache_capacity=256, cache_ttl=300.0, max_workers=8) as service:
        service.register_database("dblp", db)
        cold_build = service.warmup()["dblp"]
        print(f"cold warmup (from_database): {cold_build * 1000:.1f} ms")

        # --------------------------------------------------------------
        # 2. snapshot the built state, restart from disk
        # --------------------------------------------------------------
        with tempfile.TemporaryDirectory() as tmp:
            snap = Path(tmp) / "dblp.snap"
            service.save_snapshot("dblp", snap)
            print(f"snapshot written: {snap.stat().st_size / 1024:.0f} KiB")

            with QueryService(cache_capacity=256, cache_ttl=300.0) as warm:
                warm.register_snapshot("dblp", snap)
                warm_build = warm.warmup()["dblp"]
                print(
                    f"warm warmup (snapshot):      {warm_build * 1000:.1f} ms "
                    f"({cold_build / max(warm_build, 1e-9):.1f}x faster; the gap "
                    f"widens with dataset size — prestige iteration is the "
                    f"cost a snapshot skips)"
                )

                # ------------------------------------------------------
                # 3. repeated query: second hit comes from the cache
                # ------------------------------------------------------
                start = time.perf_counter()
                first = warm.search("dblp", "paper stream", k=5)
                uncached_s = time.perf_counter() - start
                start = time.perf_counter()
                second = warm.search("dblp", "paper  stream", k=5)
                cached_s = time.perf_counter() - start
                print(
                    f"query 'paper stream': uncached {uncached_s * 1000:.2f} ms, "
                    f"cached {cached_s * 1000:.3f} ms "
                    f"({uncached_s / max(cached_s, 1e-9):.0f}x faster), "
                    f"cached-flag={second.cached}, "
                    f"same answers={second.result.scores() == first.result.scores()}"
                )

                # ------------------------------------------------------
                # 4. concurrent batch == sequential results
                # ------------------------------------------------------
                requests = [
                    QueryRequest("dblp", query, algorithm=algorithm, k=5)
                    for query, algorithm in QUERIES
                ] * 3
                responses = warm.search_many(requests)
                engine = warm.engine("dblp")
                agree = all(
                    response.ok
                    and response.result.scores()
                    == engine.search(
                        request.query, algorithm=request.algorithm, k=5
                    ).scores()
                    for request, response in zip(requests, responses)
                )
                print(
                    f"search_many: {len(responses)} responses, "
                    f"all match sequential search: {agree}"
                )

                # ------------------------------------------------------
                # 5. metrics: one plain dict, ready for JSON
                # ------------------------------------------------------
                metrics = warm.metrics()
                print(
                    "metrics: "
                    f"requests={metrics['requests_total']}, "
                    f"cache_hit_rate={metrics['cache_hit_rate']:.2f}, "
                    f"errors={metrics['errors_total']}, "
                    "p50(bidirectional)="
                    f"{metrics['algorithms']['bidirectional']['latency_p50'] * 1000:.2f} ms"
                )

                # ------------------------------------------------------
                # 6. deadlines: cooperative cancellation + partials
                # ------------------------------------------------------
                doomed = QueryRequest(
                    "dblp",
                    "paper stream",
                    algorithm="mi-backward",
                    timeout=0.002,  # far below this query's runtime
                    allow_partial=True,
                    use_cache=False,
                    # Check the token every pop: tightest responsiveness,
                    # for demonstration (default is every 32 pops).
                    params=SearchParams(cancel_check_interval=1),
                )
                response = warm.search(doomed)
                if response.ok:
                    print("deadline demo: query beat its 2 ms deadline")
                else:
                    # Note `is not None`: an empty partial result is
                    # falsy (SearchResult has __len__), but it is still
                    # a result.
                    partial = response.result
                    have = partial is not None
                    print(
                        f"deadline demo: [{response.error_type}] with "
                        f"{len(partial.answers) if have else 0} partial "
                        f"answers (complete="
                        f"{partial.complete if have else '-'}); the "
                        f"worker thread was freed at the next check, not "
                        f"at search end"
                    )
                cancel_stats = warm.metrics()["cancellations"]
                print(
                    f"cancellation metrics: "
                    f"deadline_exceeded={cancel_stats['deadline_exceeded']}, "
                    f"cancelled={cancel_stats['cancelled']}, "
                    f"overrun={cancel_stats['overrun_seconds'] * 1000:.1f} ms"
                )


if __name__ == "__main__":
    main()
