"""Search parameters with the paper's defaults (Section 5.1).

"We used the default values noted earlier in the paper for all
parameters (such as mu, lambda and dmax)" — i.e. ``mu = 0.5``
(Section 4.3), ``lambda = 0.2`` (Section 2.3), ``dmax = 8``
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["SearchParams", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class SearchParams:
    """Tunable knobs shared by every search algorithm.

    Attributes
    ----------
    mu:
        Activation attenuation: a node spreads fraction ``mu`` of its
        received activation to neighbours and keeps ``1 - mu``
        (Section 4.3).  Only Bidirectional uses it.
    lam:
        Exponent on the tree node-prestige score in the overall
        relevance ``Escore * N**lam`` (Section 2.3).
    dmax:
        Depth cutoff: nodes at depth >= dmax from the keyword nodes are
        not expanded, preventing unintuitively long answer paths and
        ensuring termination (Section 4.2).
    max_results:
        Top-k: stop after this many answers have been *output* (the
        paper measures at the 10th relevant result).
    node_budget:
        Optional hard cap on nodes explored (popped); a safety valve for
        adversarial graphs, disabled by default like in the paper.
    activation_combine:
        How per-keyword activation from multiple edges merges:
        ``"max"`` (the paper's tree model) or ``"sum"`` (the footnote-6
        extension aggregating along multiple paths).
    output_mode:
        ``"exact"`` uses the NRA-style upper bound of Section 4.5;
        ``"heuristic"`` uses the looser edge-score-only bound the paper
        describes as "cheaper ... outputs answers faster".
    flush_interval:
        Recompute the output bound every this many pops.  Purely a
        constant-factor engineering knob; 16 keeps bound upkeep under a
        few percent of runtime.
    max_combos_per_node:
        MI-Backward only: cap on origin combinations emitted per
        confluence node, bounding the cross-product blowup inherent to
        the multi-iterator algorithm.
    cancel_check_interval:
        How many pops apart a search probes its cooperative
        :class:`~repro.core.cancellation.CancellationToken`'s expensive
        sources (deadline clock, external cancel channel).  Bounds the
        overrun of a cancelled search at ~2 intervals of pops; the
        service layers forward it as the token's ``check_every``.
    trace_every_n_pops:
        Sampling interval of the per-stage search profiler: every this
        many pops, the search records a trajectory sample (pops,
        touched, frontier sizes, elapsed) into the active trace span.
        ``0`` (the default) disables sampling; the end-of-run summary
        attributes are recorded either way whenever a span is active.
    expansion_backend:
        Which expansion kernel drives the inner loops:
        ``"python"`` (the seed's per-pop loops), ``"scalar"`` (the
        batched engine with pure-python kernels — the parity
        reference), ``"vectorized"`` (batched engine with numpy
        kernels) or ``"numba"`` (compiled kernels; silently falls back
        to ``"vectorized"`` when numba is not installed).  The default
        ``"auto"`` resolves to the ``REPRO_EXPANSION_BACKEND``
        environment variable, or ``"python"`` when unset, so existing
        behaviour is bit-identical unless a backend is opted into.
    expansion_batch:
        Cursors popped per iteration by the batched engines.  ``0``
        (default) auto-selects: 1 for the python backend, otherwise
        ``min(32, cancel_check_interval)``.  The effective batch is
        always capped at ``cancel_check_interval`` so a cancelled
        search still returns within ~2 check intervals of pops.
    frontier_balance:
        Bidirectional batched engine's side-selection rule:
        ``"activation"`` (the paper's Figure 3 switch — expand the
        queue holding the globally highest-activation cursor) or
        ``"fanout"`` (expand the structurally cheaper side by
        estimated batch fan-out; see docs/PERFORMANCE.md).
    tie_alternates:
        Emit the canonical equal-cost decomposition of a completed root
        alongside the ``sp``-table one when shortest paths are tied
        (see :mod:`repro.core.ties`), and re-sweep complete nodes at
        natural exhaustion — the guarantee that an answer whose path
        table settled on a non-minimal chain still surfaces as its
        equal-cost minimal rooting.  On by default; an escape hatch
        for exact replication of the pre-fix emission stream.
    """

    mu: float = 0.5
    activation_combine: str = "max"
    lam: float = 0.2
    dmax: int = 8
    max_results: int = 10
    node_budget: Optional[int] = None
    output_mode: str = "exact"
    flush_interval: int = 16
    max_combos_per_node: int = 64
    cancel_check_interval: int = 32
    trace_every_n_pops: int = 0
    expansion_backend: str = "auto"
    expansion_batch: int = 0
    frontier_balance: str = "activation"
    tie_alternates: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.mu <= 1.0:
            raise ValueError(f"mu must be in [0, 1], got {self.mu!r}")
        if self.activation_combine not in ("max", "sum"):
            raise ValueError(
                "activation_combine must be 'max' or 'sum', got "
                f"{self.activation_combine!r}"
            )
        if self.lam < 0.0:
            raise ValueError(f"lambda must be >= 0, got {self.lam!r}")
        if self.dmax < 1:
            raise ValueError(f"dmax must be >= 1, got {self.dmax!r}")
        if self.max_results < 1:
            raise ValueError(f"max_results must be >= 1, got {self.max_results!r}")
        if self.node_budget is not None and self.node_budget < 1:
            raise ValueError(f"node_budget must be >= 1, got {self.node_budget!r}")
        if self.output_mode not in ("exact", "heuristic"):
            raise ValueError(
                f"output_mode must be 'exact' or 'heuristic', got {self.output_mode!r}"
            )
        if self.flush_interval < 1:
            raise ValueError(
                f"flush_interval must be >= 1, got {self.flush_interval!r}"
            )
        if self.max_combos_per_node < 1:
            raise ValueError(
                f"max_combos_per_node must be >= 1, got {self.max_combos_per_node!r}"
            )
        if self.cancel_check_interval < 1:
            raise ValueError(
                f"cancel_check_interval must be >= 1, got "
                f"{self.cancel_check_interval!r}"
            )
        if self.trace_every_n_pops < 0:
            raise ValueError(
                f"trace_every_n_pops must be >= 0, got "
                f"{self.trace_every_n_pops!r}"
            )
        if self.expansion_backend not in (
            "auto",
            "python",
            "scalar",
            "vectorized",
            "numba",
        ):
            raise ValueError(
                "expansion_backend must be one of 'auto', 'python', 'scalar', "
                f"'vectorized', 'numba', got {self.expansion_backend!r}"
            )
        if self.expansion_batch < 0:
            raise ValueError(
                f"expansion_batch must be >= 0, got {self.expansion_batch!r}"
            )
        if self.frontier_balance not in ("activation", "fanout"):
            raise ValueError(
                "frontier_balance must be 'activation' or 'fanout', got "
                f"{self.frontier_balance!r}"
            )

    def with_(self, **changes) -> "SearchParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: The paper's defaults.
DEFAULT_PARAMS = SearchParams()
