"""Join primitives: follow_fk, follow_fk_reverse, join_step."""

import pytest

from repro.relational.database import Database
from repro.relational.query import follow_fk, follow_fk_reverse, join_step
from repro.relational.schema import ForeignKey, Schema, Table


@pytest.fixture
def db() -> Database:
    schema = Schema(
        tables=(
            Table("author", ("id", "name")),
            Table("paper", ("id", "author_id")),
        ),
        foreign_keys=(ForeignKey("paper", "author_id", "author"),),
    )
    db = Database(schema)
    db.insert("author", {"id": 1, "name": "gray"})
    db.insert("author", {"id": 2, "name": "codd"})
    db.insert_many(
        "paper",
        [
            {"id": 10, "author_id": 1},
            {"id": 11, "author_id": 1},
            {"id": 12, "author_id": None},
        ],
    )
    return db


def fk_of(db) -> ForeignKey:
    return db.schema.foreign_keys[0]


class TestFollowFk:
    def test_forward(self, db):
        paper = db.get("paper", 10)
        rows = list(follow_fk(db, paper, fk_of(db)))
        assert [r["id"] for r in rows] == [1]

    def test_null_reference_yields_nothing(self, db):
        paper = db.get("paper", 12)
        assert list(follow_fk(db, paper, fk_of(db))) == []

    def test_reverse(self, db):
        author = db.get("author", 1)
        rows = list(follow_fk_reverse(db, author, fk_of(db)))
        assert sorted(r["id"] for r in rows) == [10, 11]

    def test_reverse_uses_index_when_present(self, db):
        db.build_index("paper", "author_id")
        author = db.get("author", 2)
        assert list(follow_fk_reverse(db, author, fk_of(db))) == []


class TestJoinStep:
    def test_from_source_table(self, db):
        paper = db.get("paper", 10)
        rows = list(join_step(db, paper, "paper", fk_of(db)))
        assert [r["id"] for r in rows] == [1]

    def test_from_target_table(self, db):
        author = db.get("author", 1)
        rows = list(join_step(db, author, "author", fk_of(db)))
        assert sorted(r["id"] for r in rows) == [10, 11]

    def test_unrelated_table_rejected(self, db):
        author = db.get("author", 1)
        with pytest.raises(ValueError):
            list(join_step(db, author, "conference", fk_of(db)))

    def test_self_referencing_fk_rejected(self):
        schema = Schema(
            tables=(Table("emp", ("id", "boss_id")),),
            foreign_keys=(ForeignKey("emp", "boss_id", "emp"),),
        )
        db = Database(schema, enforce_fk=False)
        db.insert("emp", {"id": 1, "boss_id": 1})
        with pytest.raises(ValueError):
            list(join_step(db, db.get("emp", 1), "emp", schema.foreign_keys[0]))
