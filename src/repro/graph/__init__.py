"""Graph substrate (S1-S4): data graph, search graph, weights, prestige."""

from repro.graph.builder import build_data_graph, build_search_graph
from repro.graph.digraph import DataGraph
from repro.graph.policy import EdgePolicy, apply_edge_policy
from repro.graph.prestige import compute_prestige, prestige_transition_matrix
from repro.graph.searchgraph import Edge, SearchGraph
from repro.graph.weights import DEFAULT_FORWARD_WEIGHT, backward_edge_weight

__all__ = [
    "DataGraph",
    "SearchGraph",
    "Edge",
    "backward_edge_weight",
    "DEFAULT_FORWARD_WEIGHT",
    "EdgePolicy",
    "apply_edge_policy",
    "build_data_graph",
    "build_search_graph",
    "compute_prestige",
    "prestige_transition_matrix",
]
