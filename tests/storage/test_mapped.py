"""Mapped (v2) snapshot tier: format, parity, laziness, pinning, sidecars."""

import numpy as np
import pytest

from repro.errors import SnapshotError
from repro.service.snapshot import (
    MAPPED_SNAPSHOT_VERSION,
    SNAPSHOT_VERSION,
    load_engine,
    load_snapshot,
    main,
    mapped_sidecar_path,
    save_engine,
    snapshot_info,
)
from repro.storage import (
    MappedInvertedIndex,
    MappedSearchGraph,
    PinPolicy,
    StorageStats,
)

NO_PINS = PinPolicy(nodes=0, terms=0)


@pytest.fixture
def compressed_snapshot(toy_engine, tmp_path):
    path = tmp_path / "toy.snap"
    save_engine(path, toy_engine, version=5)
    return path


@pytest.fixture
def mapped_snapshot(toy_engine, tmp_path):
    path = tmp_path / "toy.mapped.snap"
    save_engine(path, toy_engine, version=5, format="mapped")
    return path


class TestFormat:
    def test_info_reports_both_layouts(self, compressed_snapshot, mapped_snapshot):
        v1 = snapshot_info(compressed_snapshot)
        v2 = snapshot_info(mapped_snapshot)
        assert v1["storage"] == "compressed"
        assert v1["version"] == SNAPSHOT_VERSION
        assert v2["storage"] == "mapped"
        assert v2["version"] == MAPPED_SNAPSHOT_VERSION
        for key in ("num_nodes", "num_forward_edges", "index_terms",
                    "relation_terms", "dataset_version"):
            assert v1[key] == v2[key]

    def test_content_digest_is_format_independent(
        self, compressed_snapshot, mapped_snapshot
    ):
        d1 = snapshot_info(compressed_snapshot)["content_digest"]
        d2 = snapshot_info(mapped_snapshot)["content_digest"]
        assert d1 is not None and d1 == d2

    def test_mapped_header_carries_pin_hints(self, mapped_snapshot):
        info = snapshot_info(mapped_snapshot)
        assert info["pin_hint_nodes"] > 0
        assert info["pin_hint_terms"] > 0

    def test_compressed_info_has_no_pin_hints(self, compressed_snapshot):
        info = snapshot_info(compressed_snapshot)
        assert info["pin_hint_nodes"] == 0
        assert info["pin_hint_terms"] == 0

    def test_unknown_save_format_rejected(self, toy_engine, tmp_path):
        with pytest.raises(ValueError, match="unknown snapshot format"):
            save_engine(tmp_path / "x.snap", toy_engine, format="sideways")

    def test_truncated_mapped_file_fails_loudly(self, mapped_snapshot, tmp_path):
        clipped = tmp_path / "clipped.snap"
        data = mapped_snapshot.read_bytes()
        clipped.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            load_snapshot(clipped, storage_mode="mapped")

    def test_truncated_header_fails_loudly(self, mapped_snapshot, tmp_path):
        clipped = tmp_path / "clipped.snap"
        clipped.write_bytes(mapped_snapshot.read_bytes()[:20])
        with pytest.raises(SnapshotError, match="truncated"):
            snapshot_info(clipped)


class TestParity:
    def test_mapped_rows_match_ram(self, toy_engine, mapped_snapshot):
        graph, index = load_snapshot(mapped_snapshot, storage_mode="mapped")
        assert isinstance(graph, MappedSearchGraph)
        assert isinstance(index, MappedInvertedIndex)
        original = toy_engine.graph
        assert graph.num_nodes == original.num_nodes
        assert graph.num_edges == original.num_edges
        assert graph.num_forward_edges == original.num_forward_edges
        for node in original.nodes():
            # Edge order and float identity both matter (tie-breaking).
            assert graph.out_edges(node) == original.out_edges(node)
            assert graph.in_edges(node) == original.in_edges(node)
            assert graph.label(node) == original.label(node)
            assert graph.table(node) == original.table(node)
            assert graph.ref(node) == original.ref(node)
            assert graph.in_inv_weight_sum(node) == original.in_inv_weight_sum(node)
            assert graph.out_inv_weight_sum(node) == original.out_inv_weight_sum(node)
        np.testing.assert_array_equal(graph.prestige, original.prestige)
        for term in toy_engine.index.terms():
            assert index.lookup(term) == toy_engine.index.lookup(term)
        assert index.terms_by_frequency() == toy_engine.index.terms_by_frequency()

    def test_ram_mode_on_mapped_file_builds_plain_objects(
        self, toy_engine, mapped_snapshot
    ):
        graph, index = load_snapshot(mapped_snapshot, storage_mode="ram")
        assert not isinstance(graph, MappedSearchGraph)
        assert not isinstance(index, MappedInvertedIndex)
        original = toy_engine.graph
        for node in original.nodes():
            assert graph.out_edges(node) == original.out_edges(node)
            assert graph.in_edges(node) == original.in_edges(node)

    def test_auto_mode_follows_the_file(
        self, compressed_snapshot, mapped_snapshot, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SNAPSHOT_MODE", raising=False)
        ram_graph, _ = load_snapshot(compressed_snapshot)
        map_graph, _ = load_snapshot(mapped_snapshot)
        assert not isinstance(ram_graph, MappedSearchGraph)
        assert isinstance(map_graph, MappedSearchGraph)

    def test_environment_hook_steers_default_loads(
        self, compressed_snapshot, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SNAPSHOT_MODE", "mapped")
        graph, _ = load_snapshot(compressed_snapshot)
        assert isinstance(graph, MappedSearchGraph)

    @pytest.mark.parametrize(
        "algorithm", ["bidirectional", "si-backward", "mi-backward"]
    )
    def test_search_results_identical_per_algorithm(
        self, toy_engine, mapped_snapshot, algorithm
    ):
        mapped = load_engine(mapped_snapshot, storage_mode="mapped")
        ram = load_engine(mapped_snapshot, storage_mode="ram")
        for query in ("gray transaction", "selinger vldb", '"jim gray" sigmod'):
            a = ram.search(query, algorithm=algorithm, k=5)
            b = mapped.search(query, algorithm=algorithm, k=5)
            assert b.scores() == a.scores()
            assert b.signatures() == a.signatures()


class TestLaziness:
    def test_structural_reads_fault_nothing(self, mapped_snapshot):
        graph, index = load_snapshot(
            mapped_snapshot, storage_mode="mapped", pin_policy=NO_PINS
        )
        stats = graph.storage
        assert (stats.row_faults, stats.posting_faults) == (0, 0)
        # num_edges / num_nodes / labels come from resident metadata.
        assert graph.num_edges > 0
        assert graph.num_nodes > 0
        assert graph.label(0) is not None
        assert index.vocabulary_size() > 0
        assert (stats.row_faults, stats.posting_faults) == (0, 0)

    def test_demand_faults_are_counted_once_per_row(self, mapped_snapshot):
        graph, index = load_snapshot(
            mapped_snapshot, storage_mode="mapped", pin_policy=NO_PINS
        )
        stats = graph.storage
        graph.out_edges(0)
        graph.out_edges(0)  # cached: no second fault
        assert stats.row_faults == 1
        term = next(iter(index.terms()))
        index.lookup(term)
        index.lookup(term)
        assert stats.posting_faults >= 1
        first = stats.posting_faults
        index.lookup(term)
        assert stats.posting_faults == first

    def test_mapped_bytes_accounts_the_data_region(self, mapped_snapshot):
        graph, _ = load_snapshot(
            mapped_snapshot, storage_mode="mapped", pin_policy=NO_PINS
        )
        assert 0 < graph.storage.mapped_bytes <= mapped_snapshot.stat().st_size


class TestPinning:
    def test_default_policy_pins_and_zeroes_fault_counters(self, mapped_snapshot):
        graph, _ = load_snapshot(mapped_snapshot, storage_mode="mapped")
        stats = graph.storage
        assert stats.pinned_nodes > 0
        assert stats.pinned_terms > 0
        assert stats.pinned_bytes > 0
        # Post-pin counters measure demand misses, not the warmup.
        assert (stats.row_faults, stats.posting_faults) == (0, 0)

    def test_pinned_rows_do_not_refault(self, mapped_snapshot):
        graph, _ = load_snapshot(
            mapped_snapshot,
            storage_mode="mapped",
            pin_policy={"nodes": 10_000, "terms": 10_000},
        )
        stats = graph.storage
        for node in graph.nodes():
            graph.out_edges(node)
            graph.in_edges(node)
        assert stats.row_faults == 0

    def test_with_prestige_shares_lazy_state(self, mapped_snapshot):
        graph, _ = load_snapshot(mapped_snapshot, storage_mode="mapped")
        rescored = graph.with_prestige(np.zeros(graph.num_nodes))
        assert isinstance(rescored, MappedSearchGraph)
        assert rescored.storage is graph.storage
        assert rescored.num_edges == graph.num_edges
        assert rescored.out_edges(0) == graph.out_edges(0)


class TestReadOnlyIndex:
    def test_mutations_raise_type_error(self, mapped_snapshot):
        _, index = load_snapshot(mapped_snapshot, storage_mode="mapped")
        with pytest.raises(TypeError, match="read-only"):
            index.add_text(0, "new text")
        with pytest.raises(TypeError, match="read-only"):
            index.add_term("term", 0)
        with pytest.raises(TypeError, match="read-only"):
            index.add_relation_node("paper", 0)


class TestSidecar:
    def test_mapped_mode_on_compressed_file_builds_sidecar(
        self, toy_engine, compressed_snapshot
    ):
        graph, index = load_snapshot(compressed_snapshot, storage_mode="mapped")
        assert isinstance(graph, MappedSearchGraph)
        sidecar = mapped_sidecar_path(compressed_snapshot)
        assert sidecar.exists()
        # The sidecar proves it matches its source by digest.
        assert (
            snapshot_info(sidecar)["content_digest"]
            == snapshot_info(compressed_snapshot)["content_digest"]
        )
        for node in toy_engine.graph.nodes():
            assert graph.out_edges(node) == toy_engine.graph.out_edges(node)

    def test_fresh_sidecar_is_reused(self, compressed_snapshot):
        load_snapshot(compressed_snapshot, storage_mode="mapped")
        sidecar = mapped_sidecar_path(compressed_snapshot)
        stamp = (sidecar.stat().st_mtime_ns, sidecar.stat().st_size)
        load_snapshot(compressed_snapshot, storage_mode="mapped")
        assert (sidecar.stat().st_mtime_ns, sidecar.stat().st_size) == stamp

    def test_stale_sidecar_is_rebuilt(self, toy_engine, compressed_snapshot):
        import os

        load_snapshot(compressed_snapshot, storage_mode="mapped")
        sidecar = mapped_sidecar_path(compressed_snapshot)
        before = sidecar.stat().st_mtime_ns
        # Rewrite the source with different content at a different mtime.
        save_engine(compressed_snapshot, toy_engine, version=6)
        stat = compressed_snapshot.stat()
        os.utime(
            compressed_snapshot, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000)
        )
        graph, _ = load_snapshot(compressed_snapshot, storage_mode="mapped")
        assert sidecar.stat().st_mtime_ns != before
        assert snapshot_info(sidecar)["dataset_version"] == 6
        assert isinstance(graph, MappedSearchGraph)

    def test_damaged_sidecar_is_rebuilt(self, compressed_snapshot):
        load_snapshot(compressed_snapshot, storage_mode="mapped")
        sidecar = mapped_sidecar_path(compressed_snapshot)
        sidecar.write_bytes(b"\x93REPROMAP2\n garbage")
        graph, _ = load_snapshot(compressed_snapshot, storage_mode="mapped")
        assert isinstance(graph, MappedSearchGraph)
        assert snapshot_info(sidecar)["storage"] == "mapped"


class TestCli:
    def test_info_prints_storage_and_pins_for_mapped(
        self, mapped_snapshot, capsys
    ):
        assert main(["info", str(mapped_snapshot)]) == 0
        out = capsys.readouterr().out
        assert "storage = mapped" in out
        assert "pin_hint_nodes = " in out
        assert f"version = {MAPPED_SNAPSHOT_VERSION}" in out

    def test_info_prints_storage_for_compressed(
        self, compressed_snapshot, capsys
    ):
        assert main(["info", str(compressed_snapshot)]) == 0
        out = capsys.readouterr().out
        assert "storage = compressed" in out

    def test_save_mapped_writes_v2(self, tmp_path, capsys):
        path = tmp_path / "cli.snap"
        assert (
            main(["save", "dblp", str(path), "--scale", "0.2", "--format", "mapped"])
            == 0
        )
        assert snapshot_info(path)["storage"] == "mapped"
        assert "mapped" in capsys.readouterr().out
