"""Micro-benchmarks: raw end-to-end latency of each algorithm on a
fixed mid-skew query (statistically tight, multiple rounds) — the
absolute-seconds companion to the ratio tables.
"""

import pytest

from repro.experiments.common import build_bench, workload_rng


@pytest.fixture(scope="module")
def setup():
    bench = build_bench("dblp", 0.4)
    rng = workload_rng(31337)
    query = bench.generator.sample_query(
        rng, n_keywords=3, result_size=4, band_combo=("T", "S", "L")
    )
    assert query is not None
    return bench, list(query.keywords)


@pytest.mark.parametrize("algorithm", ["bidirectional", "si-backward", "mi-backward"])
def test_search_latency(benchmark, setup, algorithm):
    bench, keywords = setup
    result = benchmark(
        lambda: bench.engine.search(keywords, algorithm=algorithm)
    )
    assert result.stats.nodes_explored > 0


def test_prestige_latency(benchmark, setup):
    bench, _ = setup
    from repro.graph.prestige import compute_prestige

    vector = benchmark(lambda: compute_prestige(bench.engine.graph))
    assert abs(float(vector.sum()) - 1.0) < 1e-6


def test_graph_build_latency(benchmark, setup):
    bench, _ = setup
    from repro.graph.builder import build_search_graph

    graph = benchmark(
        lambda: build_search_graph(bench.db, compute_prestige=False)
    )
    assert graph.num_nodes == bench.engine.graph.num_nodes
