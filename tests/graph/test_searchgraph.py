"""Frozen SearchGraph: derived backward edges, CSR arrays, prestige."""

import math

import numpy as np
import pytest

from repro.errors import UnknownNodeError
from repro.graph.digraph import DataGraph

from tests.helpers import build_graph


class TestBackwardEdgeDerivation:
    def test_every_forward_edge_gets_a_backward_twin(self):
        g = build_graph(3, [(0, 1), (2, 1)])
        assert g.num_forward_edges == 2
        assert g.num_edges == 4
        # Backward edges out of node 1 toward both sources.
        back = [(v, w) for v, w, fwd in g.out_edges(1) if not fwd]
        assert sorted(v for v, _ in back) == [0, 2]

    def test_backward_weight_uses_target_indegree(self):
        # Node 1 has indegree 2 -> backward weight log2(3).
        g = build_graph(3, [(0, 1), (2, 1)])
        back_weights = {v: w for v, w, fwd in g.out_edges(1) if not fwd}
        assert back_weights[0] == pytest.approx(math.log2(3))
        assert back_weights[2] == pytest.approx(math.log2(3))

    def test_chain_backward_weight_equals_forward(self):
        g = build_graph(2, [(0, 1, 2.0)])
        back = [(v, w) for v, w, fwd in g.out_edges(1) if not fwd]
        assert back == [(0, pytest.approx(2.0))]

    def test_in_edges_mirror_out_edges(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        for u in g.nodes():
            for v, w, fwd in g.out_edges(u):
                assert (u, w, fwd) in [tuple(e) for e in g.in_edges(v)]

    def test_forward_flags(self):
        g = build_graph(2, [(0, 1)])
        flags = {(u, v): fwd for u in g.nodes() for v, _, fwd in g.out_edges(u)}
        assert flags[(0, 1)] is True
        assert flags[(1, 0)] is False

    def test_degrees(self):
        g = build_graph(3, [(0, 1), (0, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 2  # two derived backward edges
        assert g.in_degree(1) == 1

    def test_unknown_node_raises(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(UnknownNodeError):
            g.out_edges(5)
        with pytest.raises(UnknownNodeError):
            g.in_edges(-1)


class TestInverseWeightSums:
    def test_matches_manual_sum(self):
        g = build_graph(3, [(0, 1), (2, 1)])
        for v in g.nodes():
            expected = sum(1.0 / w for _, w, _ in g.in_edges(v))
            assert g.in_inv_weight_sum(v) == pytest.approx(expected)
            expected_out = sum(1.0 / w for _, w, _ in g.out_edges(v))
            assert g.out_inv_weight_sum(v) == pytest.approx(expected_out)


class TestPrestige:
    def test_default_is_uniform(self):
        g = build_graph(4, [(0, 1)])
        assert np.allclose(g.prestige, 0.25)

    def test_with_prestige_replaces_vector(self):
        g = build_graph(2, [(0, 1)])
        g2 = g.with_prestige([0.3, 0.7])
        assert g2.node_prestige(1) == pytest.approx(0.7)
        assert g.node_prestige(1) == pytest.approx(0.5)  # original untouched
        assert g2.max_prestige == pytest.approx(0.7)

    def test_prestige_is_read_only(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            g.prestige[0] = 9.0

    def test_rejects_bad_vectors(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            g.with_prestige([1.0])
        with pytest.raises(ValueError):
            g.with_prestige([-0.1, 1.1])


class TestRefs:
    def test_node_by_ref_roundtrip(self):
        dg = DataGraph()
        a = dg.add_node("x", ref=("t", 1))
        b = dg.add_node("y", ref=("t", 2))
        g = dg.freeze()
        assert g.node_by_ref("t", 1) == a
        assert g.node_by_ref("t", 2) == b
        with pytest.raises(KeyError):
            g.node_by_ref("t", 3)


class TestCompactArrays:
    def test_formula_16v_plus_8e(self):
        g = build_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        expected = 16 * g.num_nodes + 8 * g.num_edges + 8  # +8: indptr end slot
        assert g.compact_nbytes() == expected

    def test_csr_consistency_with_adjacency(self):
        g = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        arrays = g.csr_arrays()
        indptr, dst, weight = arrays["indptr"], arrays["dst"], arrays["weight"]
        for u in g.nodes():
            lo, hi = indptr[u], indptr[u + 1]
            expected = [(v, w) for v, w, _ in g.out_edges(u)]
            got = list(zip(dst[lo:hi].tolist(), weight[lo:hi].tolist()))
            assert [v for v, _ in got] == [v for v, _ in expected]
            for (_, got_w), (_, exp_w) in zip(got, expected):
                assert got_w == pytest.approx(exp_w, rel=1e-6)

    def test_cache_reused(self):
        g = build_graph(2, [(0, 1)])
        assert g.csr_arrays() is g.csr_arrays()


class TestEdgeWeightLookup:
    def test_min_parallel_weight(self):
        dg = DataGraph()
        a, b = dg.add_nodes("ab")
        dg.add_edge(a, b, 3.0)
        dg.add_edge(a, b, 1.5)
        g = dg.freeze()
        assert g.edge_weight(a, b) == pytest.approx(1.5)

    def test_missing_edge_raises(self):
        g = build_graph(3, [(0, 1)])
        with pytest.raises(KeyError):
            g.edge_weight(0, 2)
