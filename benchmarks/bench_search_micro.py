"""Micro-benchmarks: raw end-to-end latency of each algorithm on a
fixed mid-skew query (statistically tight, multiple rounds) — the
absolute-seconds companion to the ratio tables.

Run as a script (``python benchmarks/bench_search_micro.py``) it times
every algorithm under the ``python`` and ``vectorized`` expansion
backends and emits one JSON row per (algorithm, backend) arm
(``search-micro/<algorithm>-<backend>``) for the perf-trend gate.  On
this small, quickly-terminating workload batches never fill, so the
kernel win here is modest by design — the ≥3x ratio gate lives on
``bench_kernel_speedup.py``'s expansion-dominated workload; these rows
pin the *default-deployment* latency of both backends against drift.
"""

import statistics
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.common import Report, build_bench, fmt, workload_rng


@pytest.fixture(scope="module")
def setup():
    bench = build_bench("dblp", 0.4)
    rng = workload_rng(31337)
    query = bench.generator.sample_query(
        rng, n_keywords=3, result_size=4, band_combo=("T", "S", "L")
    )
    assert query is not None
    return bench, list(query.keywords)


@pytest.mark.parametrize("algorithm", ["bidirectional", "si-backward", "mi-backward"])
def test_search_latency(benchmark, setup, algorithm):
    bench, keywords = setup
    result = benchmark(
        lambda: bench.engine.search(keywords, algorithm=algorithm)
    )
    assert result.stats.nodes_explored > 0


def test_prestige_latency(benchmark, setup):
    bench, _ = setup
    from repro.graph.prestige import compute_prestige

    vector = benchmark(lambda: compute_prestige(bench.engine.graph))
    assert abs(float(vector.sum()) - 1.0) < 1e-6


def test_graph_build_latency(benchmark, setup):
    bench, _ = setup
    from repro.graph.builder import build_search_graph

    graph = benchmark(
        lambda: build_search_graph(bench.db, compute_prestige=False)
    )
    assert graph.num_nodes == bench.engine.graph.num_nodes


ALGORITHMS = ("bidirectional", "si-backward", "mi-backward")
BACKEND_ARMS = ("python", "vectorized")
ROUNDS = 5


def run_backend_micro() -> Report:
    """Trend rows: per-algorithm latency under both expansion backends
    on the fixed mid-skew dblp query, arms alternated per round so
    machine drift hits every cell equally, median scored."""
    from conftest import emit_json

    bench = build_bench("dblp", 0.4)
    rng = workload_rng(31337)
    query = bench.generator.sample_query(
        rng, n_keywords=3, result_size=4, band_combo=("T", "S", "L")
    )
    assert query is not None
    keywords = list(query.keywords)
    arms = [(algo, backend) for algo in ALGORITHMS for backend in BACKEND_ARMS]
    params = {
        backend: bench.engine.params.with_(expansion_backend=backend)
        for backend in BACKEND_ARMS
    }

    def _search(algo, backend):
        return bench.engine.search(
            keywords, algorithm=algo, params=params[backend]
        )

    times: dict[tuple, list[float]] = {arm: [] for arm in arms}
    for algo, backend in arms:  # warm engine + CSR caches off the clock
        _search(algo, backend)
    for _ in range(ROUNDS):
        for algo, backend in arms:
            start = time.perf_counter()
            result = _search(algo, backend)
            times[(algo, backend)].append(time.perf_counter() - start)
            assert result.stats.nodes_explored > 0

    median = {arm: statistics.median(ts) for arm, ts in times.items()}
    report = Report(
        experiment="search-micro",
        title=(
            f"per-algorithm latency, python vs vectorized backend, "
            f"median of {ROUNDS} alternating rounds"
        ),
        headers=["algorithm", "backend", "median ms", "QPS", "vs python"],
    )
    for algo, backend in arms:
        qps = 1.0 / median[(algo, backend)]
        speedup = median[(algo, "python")] / median[(algo, backend)]
        emit_json(
            {
                "experiment": "search-micro",
                "mode": f"{algo}-{backend}",
                "rounds": ROUNDS,
                "qps": qps,
                "latency_ms": median[(algo, backend)] * 1000.0,
                "speedup_vs_python": speedup,
            }
        )
        report.rows.append(
            [
                algo,
                backend,
                fmt(median[(algo, backend)] * 1000.0),
                fmt(qps),
                fmt(speedup),
            ]
        )
    return report


def test_backend_micro_rows(benchmark):
    from conftest import run_report

    report = run_report(benchmark, run_backend_micro)
    assert len(report.rows) == len(ALGORITHMS) * len(BACKEND_ARMS)


if __name__ == "__main__":
    print(run_backend_micro().render())
