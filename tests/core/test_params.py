"""SearchParams validation and defaults."""

import pytest

from repro.core.params import DEFAULT_PARAMS, SearchParams


class TestDefaults:
    def test_paper_defaults(self):
        # Section 5.1: mu=0.5, lambda=0.2, dmax=8, measured at 10th result.
        assert DEFAULT_PARAMS.mu == 0.5
        assert DEFAULT_PARAMS.lam == 0.2
        assert DEFAULT_PARAMS.dmax == 8
        assert DEFAULT_PARAMS.max_results == 10
        assert DEFAULT_PARAMS.output_mode == "exact"

    def test_with_override(self):
        params = DEFAULT_PARAMS.with_(mu=0.9, dmax=4)
        assert params.mu == 0.9
        assert params.dmax == 4
        assert params.lam == 0.2  # untouched
        assert DEFAULT_PARAMS.mu == 0.5  # original frozen


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("mu", -0.1),
        ("mu", 1.0001),
        ("lam", -1.0),
        ("dmax", 0),
        ("max_results", 0),
        ("node_budget", 0),
        ("output_mode", "fancy"),
        ("flush_interval", 0),
        ("max_combos_per_node", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            SearchParams(**{field: value})

    def test_boundary_values_accepted(self):
        SearchParams(mu=0.0)
        SearchParams(mu=1.0)
        SearchParams(lam=0.0)
        SearchParams(dmax=1)
        SearchParams(node_budget=1)
        SearchParams(output_mode="heuristic")
