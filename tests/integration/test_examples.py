"""Every example script must run cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Examples print a lot; capture and sanity-check rather than assert
    # exact text (data-dependent).
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "figure4_walkthrough",
        "dblp_queries",
        "imdb_queries",
        "patents_queries",
        "extensions_near_and_constraints",
    } <= names
