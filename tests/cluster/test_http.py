"""HTTP front-end: routes, status mapping, batch slots, health."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster.http import make_server, status_for_error
from repro.service.service import QueryService


@pytest.fixture(scope="module")
def http_service(toy_engine_session):
    service = QueryService()
    service.register_engine("toy", toy_engine_session)
    with service:
        yield service


@pytest.fixture(scope="module")
def server(http_service):
    server = make_server(http_service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(server, path, obj):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_search_ok(server, toy_engine_session):
    status, body = _post(
        server, "/search", {"dataset": "toy", "query": "gray transaction", "k": 3}
    )
    assert status == 200
    assert body["error"] is None
    local = toy_engine_session.search("gray transaction", k=3)
    assert [a["tree"]["score"] for a in body["result"]["answers"]] == local.scores()


def test_search_error_statuses(server):
    assert _post(server, "/search", {"dataset": "nope", "query": "x"})[0] == 404
    status, body = _post(server, "/search", {"dataset": "toy", "query": "zzznope"})
    assert status == 404
    assert body["error_type"] == "KeywordNotFoundError"
    # Malformed request object: 400 with a structured body.
    status, body = _post(server, "/search", {"bogus": 1})
    assert status == 400
    assert body["error_type"] == "ValueError"


def test_bad_json_and_unknown_route(server):
    request = urllib.request.Request(
        _url(server, "/search"), data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400
    assert _get(server, "/nope")[0] == 404
    assert _post(server, "/nope", {})[0] == 404


def test_batch_keeps_slots(server):
    status, body = _post(
        server,
        "/batch",
        {
            "requests": [
                {"dataset": "toy", "query": "gray transaction"},
                {"oops": True},
                {"dataset": "toy", "query": "zzznope"},
            ]
        },
    )
    assert status == 200  # per-item errors live inside the slots
    responses = body["responses"]
    assert len(responses) == 3
    assert responses[0]["error"] is None
    assert responses[1]["error_type"] == "ValueError"
    assert responses[2]["error_type"] == "KeywordNotFoundError"

    status, body = _post(server, "/batch", {"nope": 1})
    assert status == 400


def test_metrics_and_healthz(server):
    status, body = _get(server, "/metrics")
    assert status == 200
    assert body["requests_total"] >= 1
    status, body = _get(server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["datasets"] == ["toy"]


def test_healthz_reports_fleet_state(server, sharded):
    # Swap the bound service for the sharded tier: same facade, and
    # healthz now carries fleet liveness.
    original = server.service
    try:
        server.service = sharded
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["workers"] == 2
        assert body["alive"] == 2
        status, body = _post(
            server, "/search", {"dataset": "alpha", "query": "gray transaction"}
        )
        assert status == 200
        assert body["error"] is None
    finally:
        server.service = original


def _get_raw(server, path):
    """Like ``_get`` but also returns headers and the raw body text."""
    try:
        with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode("utf-8")


def _post_raw(server, path, obj):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode("utf-8")


def test_search_returns_trace_and_request_id_headers(server):
    status, headers, body = _post_raw(
        server,
        "/search",
        {"dataset": "toy", "query": "gray", "request_id": "req-http-1"},
    )
    assert status == 200
    payload = json.loads(body)
    trace_id = headers.get("X-Trace-Id")
    assert trace_id and len(trace_id) == 32
    assert headers.get("X-Request-Id") == "req-http-1"
    assert payload["trace_id"] == trace_id
    assert payload["request_id"] == "req-http-1"
    # Span payloads never ride the response body; trees are read via
    # /debug/trace/<id>.
    assert payload["spans"] is None


def test_error_responses_still_carry_trace_header(server):
    status, headers, _ = _post_raw(
        server, "/search", {"dataset": "nope", "query": "x"}
    )
    assert status == 404
    assert headers.get("X-Trace-Id")


def test_debug_trace_reconstructs_http_rooted_tree(server):
    _, headers, _ = _post_raw(
        server, "/search", {"dataset": "toy", "query": "gray transaction"}
    )
    trace_id = headers["X-Trace-Id"]
    status, tree = _get(server, f"/debug/trace/{trace_id}")
    assert status == 200
    assert tree["trace_id"] == trace_id
    (root,) = tree["roots"]
    assert root["name"] == "http"
    assert root["attributes"]["path"] == "/search"
    child_names = {child["name"] for child in root["children"]}
    assert "worker" in child_names


def test_debug_trace_unknown_id_is_404(server):
    assert _get(server, "/debug/trace/" + "0" * 32)[0] == 404


def test_debug_slow_lists_flight_recorded_queries(server, http_service):
    original = http_service.slow_log.threshold
    http_service.slow_log.threshold = 0.0
    try:
        _, headers, _ = _post_raw(
            server, "/search", {"dataset": "toy", "query": "selinger"}
        )
        status, body = _get(server, "/debug/slow")
        assert status == 200
        assert len(body["slow_queries"]) >= 1
        entry = body["slow_queries"][0]
        assert entry["trace_id"] == headers["X-Trace-Id"]
        assert entry["span_tree"]["span_count"] >= 1
    finally:
        http_service.slow_log.threshold = original
        http_service.slow_log.clear()


def test_metrics_prometheus_exposition(server):
    _post_raw(server, "/search", {"dataset": "toy", "query": "gray"})
    status, headers, text = _get_raw(server, "/metrics?format=prometheus")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert "# TYPE repro_requests_total counter" in text
    assert "# TYPE repro_request_latency_seconds histogram" in text
    # Every sample line is ``name{labels} value``.
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)
        assert name_part


def test_metrics_unknown_format_is_400(server):
    status, body = _get(server, "/metrics?format=xml")
    assert status == 400
    assert body["error_type"] == "ValueError"


def test_debug_trace_text_format_renders_span_tree(server):
    _, headers, _ = _post_raw(
        server, "/search", {"dataset": "toy", "query": "gray transaction"}
    )
    trace_id = headers["X-Trace-Id"]
    status, resp_headers, text = _get_raw(
        server, f"/debug/trace/{trace_id}?format=text"
    )
    assert status == 200
    assert resp_headers["Content-Type"].startswith("text/plain")
    assert text.startswith("http")  # the root span, children indented
    assert "path=/search" in text
    assert "worker" in text


def test_debug_trace_unknown_format_is_400(server):
    status, _ = _get(server, "/debug/trace/" + "0" * 32 + "?format=xml")
    assert status == 400


def test_debug_events_incremental_polling(server, http_service):
    http_service.event_log.emit(
        "probe", "http tier event", severity="warning", dataset="toy"
    )
    status, body = _get(server, "/debug/events?since=0")
    assert status == 200
    seqs = [event["seq"] for event in body["events"]]
    assert seqs == sorted(seqs) and seqs
    assert body["last_seq"] == seqs[-1]
    kinds = {event["kind"] for event in body["events"]}
    assert "probe" in kinds
    # Nothing new past the head.
    status, body = _get(server, f"/debug/events?since={body['last_seq']}")
    assert status == 200
    assert body["events"] == []


def test_debug_events_bad_since_is_400(server):
    assert _get(server, "/debug/events?since=abc")[0] == 400


def test_debug_profile_disabled_is_501(server):
    # The thread-tier module fixture runs with profiling off.
    status, body = _get(server, "/debug/profile?seconds=0.1")
    assert status == 501
    assert "profiling" in body["error"]


def test_debug_profile_bounds_and_bad_values(server):
    assert _get(server, "/debug/profile?seconds=bogus")[0] == 400
    assert _get(server, "/debug/profile?seconds=99")[0] == 400
    assert _get(server, "/debug/profile?seconds=-1")[0] == 400


def test_debug_profile_collapsed_stacks_from_fleet(server, sharded):
    original = server.service
    try:
        server.service = sharded
        status, headers, text = _get_raw(server, "/debug/profile?seconds=0.3")
        assert status == 200, text
        assert headers["Content-Type"].startswith("text/plain")
        lines = [line for line in text.splitlines() if line.strip()]
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack and count.isdigit()
    finally:
        server.service = original


def test_debug_dashboard_serves_html(server, sharded):
    original = server.service
    try:
        server.service = sharded
        sharded.search("alpha", "gray transaction")
        status, headers, html = _get_raw(server, "/debug/dashboard")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        for needle in ("<!doctype html>", "SLO", "Events", "alpha"):
            assert needle in html, needle
    finally:
        server.service = original


def test_debug_dashboard_on_thread_tier(server):
    status, headers, html = _get_raw(server, "/debug/dashboard")
    assert status == 200
    assert "<!doctype html>" in html
    assert "QueryService" in html


def test_status_for_error_mapping():
    assert status_for_error(None) == 200
    assert status_for_error("UnknownDatasetError") == 404
    assert status_for_error("KeywordNotFoundError") == 404
    assert status_for_error("EmptyQueryError") == 400
    assert status_for_error("DeadlineExceededError") == 504
    assert status_for_error("WorkerCrashedError") == 503
    assert status_for_error("SomethingElse") == 500
