"""Engine edge cases: empty graphs, isolated matches, odd queries."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.params import SearchParams
from repro.errors import KeywordNotFoundError
from repro.graph.digraph import DataGraph
from repro.index.inverted import InvertedIndex


def tiny_engine(edges, texts, n_nodes):
    graph = DataGraph()
    for i in range(n_nodes):
        graph.add_node(f"n{i}")
    for u, v in edges:
        graph.add_edge(u, v)
    sg = graph.freeze()
    index = InvertedIndex()
    for node, text in texts.items():
        index.add_text(node, text)
    return KeywordSearchEngine(sg, index)


class TestIsolatedNodes:
    def test_isolated_keyword_node_single_keyword(self):
        engine = tiny_engine([(0, 1)], {2: "island"}, 3)
        result = engine.search("island")
        assert len(result.answers) == 1
        assert result.best().tree.nodes() == {2}

    def test_isolated_node_cannot_connect(self):
        engine = tiny_engine([(0, 1)], {0: "alpha", 2: "island"}, 3)
        result = engine.search("alpha island")
        assert result.answers == []


class TestSameNodeAllKeywords:
    def test_single_node_answer_ranks_first(self):
        engine = tiny_engine(
            [(0, 1), (1, 2)], {1: "alpha beta", 0: "alpha", 2: "beta"}, 3
        )
        result = engine.search("alpha beta")
        assert result.answers
        assert result.best().tree.size() == 1
        assert result.best().tree.root == 1


class TestRepeatedKeyword:
    def test_duplicate_keywords_allowed(self):
        engine = tiny_engine([(0, 1)], {0: "alpha", 1: "alpha"}, 2)
        result = engine.search("alpha alpha")
        assert result.answers
        # Both keywords matched by the same node: single-node answer.
        assert result.best().tree.size() == 1


class TestCaseAndWhitespace:
    def test_case_insensitive(self):
        engine = tiny_engine([(0, 1)], {0: "Alpha", 1: "BETA"}, 2)
        assert engine.origin_sizes("ALPHA beta") == (1, 1)

    def test_extra_whitespace_ignored(self):
        engine = tiny_engine([(0, 1)], {0: "alpha", 1: "beta"}, 2)
        assert engine.origin_sizes("  alpha    beta  ") == (1, 1)


class TestPunctuationKeyword:
    def test_punctuation_only_keyword_rejected(self):
        engine = tiny_engine([(0, 1)], {0: "alpha"}, 2)
        with pytest.raises(KeywordNotFoundError):
            engine.search("alpha ???")


class TestTopKOne:
    def test_k_one_returns_best(self):
        engine = tiny_engine(
            [(0, 1), (2, 1), (3, 1)],
            {1: "hub", 0: "spoke", 2: "spoke", 3: "spoke"},
            4,
        )
        full = engine.search("hub spoke", params=SearchParams(max_results=50))
        top1 = engine.search("hub spoke", k=1)
        assert len(top1.answers) == 1
        assert top1.best().score == pytest.approx(full.best().score)
