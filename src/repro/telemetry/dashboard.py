"""Ops dashboard: one dependency-free HTML page for the whole fleet.

:func:`render_dashboard` turns the ``dashboard_data()`` dict either
service tier assembles — health, SLO status, recent events, metric
headlines, slow queries, profiler headline — into a single
self-contained HTML document.  No JavaScript frameworks, no external
assets, no CDN: inline CSS and a ``<meta http-equiv="refresh">`` tag,
so the page works from ``file://``, behind an airgap, and in ``curl``.

The renderer is a pure function over plain dicts and is deliberately
forgiving: every section renders from whatever keys are present and
collapses to a stub when its data is missing, so a heterogeneous or
degraded fleet still produces a page (the page being *about* degraded
fleets).
"""

from __future__ import annotations

import html
import time
from typing import Any, Iterable, Mapping

__all__ = ["algorithm_summary", "render_dashboard"]


def algorithm_summary(algorithms: Mapping[str, Any] | None) -> dict[str, Any]:
    """Boil a ``ServiceMetrics`` per-algorithm export down to the
    request count and latency percentiles the dashboard table shows."""
    summary: dict[str, Any] = {}
    for name, entry in (algorithms or {}).items():
        entry = entry or {}
        summary[name] = {
            "requests": entry.get("requests"),
            "p50": entry.get("latency_p50"),
            "p90": entry.get("latency_p90"),
            "p99": entry.get("latency_p99"),
        }
    return summary

_SEVERITY_COLORS = {
    "debug": "#8a8f98",
    "info": "#2563eb",
    "warning": "#b45309",
    "error": "#dc2626",
    "critical": "#7f1d1d",
}

_CSS = """
body { font-family: ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
       margin: 1.2rem; background: #0b1020; color: #e2e8f0; }
h1 { font-size: 1.25rem; margin: 0 0 0.25rem 0; }
h2 { font-size: 1rem; border-bottom: 1px solid #1e293b;
     padding-bottom: 0.2rem; margin-top: 1.4rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.25rem 0.6rem;
         border-bottom: 1px solid #1e293b; vertical-align: top; }
th { color: #94a3b8; font-weight: 600; }
.cards { display: flex; flex-wrap: wrap; gap: 0.6rem; margin: 0.8rem 0; }
.card { background: #111827; border: 1px solid #1e293b; border-radius: 6px;
        padding: 0.5rem 0.9rem; min-width: 7rem; }
.card .label { color: #94a3b8; font-size: 0.7rem; text-transform: uppercase; }
.card .value { font-size: 1.15rem; margin-top: 0.15rem; }
.ok { color: #22c55e; } .bad { color: #ef4444; } .warn { color: #f59e0b; }
.badge { border-radius: 4px; padding: 0 0.4rem; font-size: 0.75rem;
         color: #fff; display: inline-block; }
.muted { color: #64748b; } pre { margin: 0; white-space: pre-wrap; }
a { color: #60a5fa; text-decoration: none; }
"""


def _esc(value: Any) -> str:
    return html.escape("" if value is None else str(value), quote=True)


def _fmt_num(value: Any, digits: int = 2) -> str:
    if value is None:
        return "–"
    try:
        number = float(value)
    except (TypeError, ValueError):
        return _esc(value)
    if number == int(number) and abs(number) < 1e15:
        return f"{int(number):,}"
    return f"{number:,.{digits}f}"


def _fmt_ts(value: Any) -> str:
    try:
        return time.strftime("%H:%M:%S", time.localtime(float(value)))
    except (TypeError, ValueError, OSError, OverflowError):
        return "–"


def _card(label: str, value: str, klass: str = "") -> str:
    return (
        f'<div class="card"><div class="label">{_esc(label)}</div>'
        f'<div class="value {klass}">{value}</div></div>'
    )


def _table(headers: Iterable[str], rows: Iterable[Iterable[str]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    if not body:
        body = (
            f'<tr><td colspan="{len(tuple(headers))}" class="muted">'
            f"(none)</td></tr>"
        )
    return f"<table><tr>{head}</tr>{body}</table>"


def _health_cards(data: Mapping[str, Any]) -> str:
    health = data.get("health") or {}
    cards: list[str] = []
    status = health.get("status")
    if status is not None:
        klass = "ok" if status == "ok" else "bad"
        cards.append(_card("status", _esc(status), klass))
    workers = health.get("workers")
    alive = health.get("workers_alive")
    if workers is not None:
        klass = "ok" if alive == workers else "bad"
        cards.append(_card("workers alive", f"{_fmt_num(alive)}/{_fmt_num(workers)}", klass))
    restarts = health.get("restarts")
    if isinstance(restarts, Mapping):
        total = sum(restarts.values())
        cards.append(_card("restarts", _fmt_num(total), "warn" if total else ""))
    metrics = data.get("metrics") or {}
    if "requests_total" in metrics:
        cards.append(_card("requests", _fmt_num(metrics.get("requests_total"))))
    if "errors_total" in metrics:
        errors = metrics.get("errors_total") or 0
        cards.append(_card("errors", _fmt_num(errors), "warn" if errors else "ok"))
    if metrics.get("cache_hit_rate") is not None:
        cards.append(
            _card("cache hit", f"{float(metrics['cache_hit_rate']) * 100:.0f}%")
        )
    slo = data.get("slo") or []
    firing = sum(1 for status in slo if status.get("firing"))
    if slo:
        cards.append(
            _card(
                "slo alerts",
                _fmt_num(firing),
                "bad" if firing else "ok",
            )
        )
    profile = data.get("profile") or {}
    if profile.get("total") is not None:
        cards.append(_card("profile samples", _fmt_num(profile.get("total"))))
    return f'<div class="cards">{"".join(cards)}</div>' if cards else ""


def _versions_section(data: Mapping[str, Any]) -> str:
    health = data.get("health") or {}
    versions = health.get("versions") or {}
    wal_seq = health.get("wal_seq") or {}
    drift = health.get("version_drift") or []
    if not versions and not wal_seq:
        return ""
    rows = []
    datasets = sorted(set(versions) | set(wal_seq))
    for dataset in datasets:
        drifted = dataset in drift
        rows.append(
            [
                _esc(dataset),
                _esc(versions.get(dataset, "–")),
                _esc(wal_seq.get(dataset, "–")),
                '<span class="bad">drift</span>'
                if drifted
                else '<span class="ok">in sync</span>',
            ]
        )
    return "<h2>Datasets</h2>" + _table(
        ["dataset", "replica versions", "wal seq", "state"], rows
    )


def _slo_section(data: Mapping[str, Any]) -> str:
    rows = []
    for status in data.get("slo") or []:
        windows = status.get("windows") or {}
        fast = windows.get("fast") or {}
        slow = windows.get("slow") or {}
        firing = status.get("firing")
        badge = (
            '<span class="badge" style="background:#dc2626">FIRING</span>'
            if firing
            else '<span class="badge" style="background:#166534">ok</span>'
        )
        rows.append(
            [
                _esc(status.get("objective")),
                _esc(status.get("kind")),
                _esc(status.get("dataset")),
                _fmt_num(fast.get("burn_rate")),
                _fmt_num(slow.get("burn_rate")),
                _fmt_num(status.get("burn_threshold")),
                badge,
            ]
        )
    return "<h2>SLOs</h2>" + _table(
        ["objective", "kind", "dataset", "fast burn", "slow burn", "threshold", ""],
        rows,
    )


def _events_section(data: Mapping[str, Any]) -> str:
    events = list(data.get("events") or [])
    events.sort(key=lambda event: event.get("seq") or 0, reverse=True)
    rows = []
    for event in events:
        severity = event.get("severity") or "info"
        color = _SEVERITY_COLORS.get(severity, "#2563eb")
        badge = (
            f'<span class="badge" style="background:{color}">{_esc(severity)}</span>'
        )
        rows.append(
            [
                _esc(event.get("seq")),
                _fmt_ts(event.get("ts")),
                badge,
                _esc(event.get("kind")),
                _esc(event.get("dataset") or ""),
                _esc(event.get("source") or ""),
                _esc(event.get("message")),
            ]
        )
    return "<h2>Events</h2>" + _table(
        ["seq", "time", "severity", "kind", "dataset", "source", "message"], rows
    )


def _latency_section(data: Mapping[str, Any]) -> str:
    algorithms = (data.get("metrics") or {}).get("algorithms") or {}
    rows = []
    for name in sorted(algorithms):
        stats = algorithms[name] or {}
        percentiles = stats.get("latency") or stats
        rows.append(
            [
                _esc(name),
                _fmt_num(stats.get("requests")),
                _fmt_num(percentiles.get("p50"), 4),
                _fmt_num(percentiles.get("p90"), 4),
                _fmt_num(percentiles.get("p99"), 4),
            ]
        )
    if not rows:
        return ""
    return "<h2>Latency (seconds)</h2>" + _table(
        ["algorithm", "requests", "p50", "p90", "p99"], rows
    )


def _slow_section(data: Mapping[str, Any]) -> str:
    rows = []
    for entry in data.get("slow_queries") or []:
        request = entry.get("request") or {}
        trace_id = entry.get("trace_id")
        trace_cell = (
            f'<a href="/debug/trace/{_esc(trace_id)}?format=text">{_esc(trace_id)}</a>'
            if trace_id
            else '<span class="muted">–</span>'
        )
        rows.append(
            [
                _fmt_ts(entry.get("recorded_at")),
                _fmt_num(entry.get("elapsed"), 3),
                _esc(request.get("dataset")),
                _esc(request.get("query")),
                _esc(entry.get("error_type") or ""),
                trace_cell,
            ]
        )
    return "<h2>Slow queries</h2>" + _table(
        ["recorded", "elapsed s", "dataset", "query", "error", "trace"], rows
    )


def _queries_section(data: Mapping[str, Any]) -> str:
    queries = data.get("queries") or {}
    entries = queries.get("entries") or []
    if not entries:
        return ""
    rows = []
    for entry in entries[:10]:
        count = entry.get("count") or 0
        elapsed = entry.get("elapsed_total") or 0.0
        costs = entry.get("costs") or {}
        pops = (costs.get("pops_in") or 0) + (costs.get("pops_out") or 0)
        rows.append(
            [
                _esc(entry.get("key")),
                _fmt_num(count),
                _fmt_num(entry.get("error")),
                _fmt_num(elapsed, 3),
                _fmt_num(elapsed / count if count else None, 4),
                _fmt_num(pops),
                _fmt_num(costs.get("heap_ops")),
            ]
        )
    note = (
        f'<p class="muted">{_fmt_num(queries.get("total"))} queries sketched'
        f' · counts are over-estimates with the shown error bound'
        ' · raw: <a href="/debug/queries">/debug/queries</a></p>'
    )
    return (
        "<h2>Top queries (workload analytics)</h2>"
        + _table(
            [
                "fingerprint",
                "count",
                "±err",
                "elapsed s",
                "s/query",
                "pops",
                "heap ops",
            ],
            rows,
        )
        + note
    )


def _profile_section(data: Mapping[str, Any]) -> str:
    profile = data.get("profile") or {}
    samples = profile.get("samples") or {}
    if not samples:
        return ""
    hottest = sorted(samples.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
    total = profile.get("total") or sum(samples.values()) or 1
    rows = [
        [
            _fmt_num(count),
            f"{100.0 * count / total:.1f}%",
            f"<pre>{_esc(stack)}</pre>",
        ]
        for stack, count in hottest
    ]
    return (
        "<h2>Hottest stacks (sampling profiler)</h2>"
        + _table(["samples", "share", "stack"], rows)
        + '<p class="muted">Full collapsed-stack profile: '
        '<a href="/debug/profile?seconds=2">/debug/profile?seconds=2</a></p>'
    )


def render_dashboard(
    data: Mapping[str, Any], *, refresh_seconds: int | None = 5
) -> str:
    """Render the full dashboard page from a ``dashboard_data()`` dict."""
    refresh = (
        f'<meta http-equiv="refresh" content="{int(refresh_seconds)}">'
        if refresh_seconds
        else ""
    )
    generated = data.get("generated_at")
    subtitle = (
        f"{_esc(data.get('service') or 'service')} · generated "
        f"{_fmt_ts(generated)} · auto-refresh "
        f"{int(refresh_seconds)}s" if refresh_seconds
        else f"{_esc(data.get('service') or 'service')}"
    )
    sections = [
        _health_cards(data),
        _slo_section(data),
        _events_section(data),
        _versions_section(data),
        _latency_section(data),
        _slow_section(data),
        _queries_section(data),
        _profile_section(data),
    ]
    links = (
        '<p class="muted">raw: <a href="/metrics?format=prometheus">prometheus</a>'
        ' · <a href="/debug/events">events</a>'
        ' · <a href="/debug/slow">slow queries</a>'
        ' · <a href="/debug/queries">top queries</a>'
        ' · <a href="/debug/profile?seconds=2">profile</a></p>'
    )
    return (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"{refresh}<title>repro ops dashboard</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>repro ops dashboard</h1>"
        f'<p class="muted">{subtitle}</p>'
        f"{''.join(section for section in sections if section)}"
        f"{links}"
        "</body></html>"
    )
