"""The paper's Figure 4 example, end to end (Section 4.4)."""

import pytest

from repro.core.params import SearchParams
from repro.experiments.figure4 import build_figure4_engine, run_figure4


@pytest.fixture(scope="module")
def engine_meta():
    return build_figure4_engine()


class TestFigure4Graph:
    def test_shape(self, engine_meta):
        engine, _ = engine_meta
        # 100 papers + 2 authors + 50 writes nodes.
        assert engine.graph.num_nodes == 152
        assert engine.index.frequency("database") == 100
        assert engine.index.frequency("james") == 1
        assert engine.index.frequency("john") == 1

    def test_john_has_large_fanin(self, engine_meta):
        engine, meta = engine_meta
        assert engine.graph.in_degree(meta["john"]) >= 49

    def test_unit_prestige(self, engine_meta):
        engine, _ = engine_meta
        prestige = engine.graph.prestige
        assert prestige.max() == pytest.approx(prestige.min())


class TestFigure4Claims:
    def test_all_algorithms_find_coauthored_paper(self, engine_meta):
        engine, meta = engine_meta
        for algorithm in ("bidirectional", "si-backward", "mi-backward"):
            result = engine.search("database james john", algorithm=algorithm)
            assert result.answers, algorithm
            assert meta["co_paper"] in result.best().tree.nodes(), algorithm

    def test_bidirectional_generates_with_few_expansions(self, engine_meta):
        engine, _ = engine_meta
        # Pops-to-generate is a per-pop scheduling claim: batched
        # backends pop whole batches, so the claim is pinned to the
        # reference per-pop loop.
        result = engine.search(
            "database james john",
            params=SearchParams(expansion_backend="python"),
        )
        best = result.best()
        # Paper: "Bidirectional search would explore only 4 nodes";
        # our pop accounting differs slightly, allow up to 12.
        assert best.generated_pops <= 12

    def test_backward_explores_over_one_hundred_nodes(self, engine_meta):
        engine, _ = engine_meta
        result = engine.search("database james john", algorithm="si-backward")
        best = result.best()
        # Paper: "Backward expanding search would explore at least 151
        # nodes" — SI merges iterators but still must pop ~everything.
        assert best.generated_pops >= 100

    def test_report_regenerates(self):
        report = run_figure4()
        assert len(report.rows) == 3
        assert all(row[5] == "True" for row in report.rows)
