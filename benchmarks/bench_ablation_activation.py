"""ABL1 bench: spreading activation vs distance-only prioritization."""

from repro.experiments.ablations import run_ablation_activation

from conftest import as_float, run_report


def test_activation_ablation(benchmark):
    report = run_report(benchmark, run_ablation_activation)
    assert len(report.rows) == 6  # 5 mus + si-backward reference
    rows = {row[0]: row for row in report.rows}
    paper_default = rows["bidirectional mu=0.5"]
    reference = rows["si-backward (distance only)"]
    if paper_default[1] != "-" and reference[1] != "-":
        # Activation prioritization should generate relevant answers in
        # no more pops than pure distance ordering, in aggregate.
        assert as_float(paper_default[1]) <= as_float(reference[1]) * 1.5
