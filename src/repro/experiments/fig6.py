"""FIG6a/b/c: the workload plots of paper Figure 6.

(a) MI-Backward / SI-Backward output-time ratio vs keyword count, for
    small- and large-origin workloads (result size 5);
(b) SI-Backward / Bidirectional, same protocol;
(c) SI-Backward / Bidirectional time and nodes-explored ratios for
    4-keyword queries bucketed by origin-size band combination
    (result size 3).  The paper's printed legend is corrupted (every
    row reads "(T,S,S,S)"); per its prose — "the speedup increases as
    the difference between the origin sizes of keywords increases" — we
    sweep combinations from uniform-rare to maximally skewed.

Each point aggregates per-query ratios with the geometric mean.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    Report,
    build_bench,
    fmt,
    geomean,
    run_measured,
    safe_ratio,
    workload_rng,
)

__all__ = ["run_fig6a", "run_fig6b", "run_fig6c", "FIG6C_COMBOS"]

#: Figure 6(c) band combinations, uniform first, most skewed last.
FIG6C_COMBOS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("A", ("T", "T", "T", "T")),
    ("B", ("S", "S", "S", "S")),
    ("C", ("M", "M", "M", "M")),
    ("D", ("M", "L", "L", "L")),
    ("E", ("T", "T", "T", "S")),
    ("F", ("T", "T", "T", "M")),
    ("G", ("T", "T", "L", "L")),
    ("H", ("T", "T", "T", "L")),
)


def _ratio_sweep(
    *,
    experiment: str,
    title: str,
    slow: str,
    fast: str,
    scale: float,
    queries_per_point: int,
    keyword_range: Sequence[int],
    result_size: int,
    seed: int,
    note: str,
) -> Report:
    """Shared driver for Figure 6(a) and 6(b)."""
    bench = build_bench("dblp", scale)
    report = Report(
        experiment=experiment,
        title=title,
        headers=[
            "#keywords",
            f"{slow}/{fast} out-time (small origin)",
            "(large origin)",
            "nodes-expl (small)",
            "(large)",
            "gen-time (small)",
            "(large)",
            "queries",
        ],
    )
    for n_keywords in keyword_range:
        cells: dict[str, Optional[float]] = {}
        counts = []
        for origin_class in ("small", "large"):
            rng = workload_rng(seed + n_keywords * 17)
            time_ratios: list[float] = []
            pop_ratios: list[float] = []
            gen_ratios: list[float] = []
            for _ in range(queries_per_point):
                query = bench.generator.sample_query(
                    rng,
                    n_keywords=n_keywords,
                    result_size=result_size,
                    origin_class=origin_class,
                )
                if query is None:
                    continue
                _, points = run_measured(
                    bench, query.keywords, (slow, fast), result_size=result_size
                )
                slow_point = points.get(slow)
                fast_point = points.get(fast)
                if slow_point is None or fast_point is None:
                    continue
                time_ratio = safe_ratio(slow_point.out_time, fast_point.out_time)
                pop_ratio = safe_ratio(slow_point.out_pops, fast_point.out_pops)
                gen_ratio = safe_ratio(slow_point.gen_time, fast_point.gen_time)
                if time_ratio is not None:
                    time_ratios.append(time_ratio)
                if pop_ratio is not None:
                    pop_ratios.append(pop_ratio)
                if gen_ratio is not None:
                    gen_ratios.append(gen_ratio)
            cells[f"time_{origin_class}"] = geomean(time_ratios)
            cells[f"pops_{origin_class}"] = geomean(pop_ratios)
            cells[f"gen_{origin_class}"] = geomean(gen_ratios)
            counts.append(len(time_ratios))
        report.rows.append(
            [
                str(n_keywords),
                fmt(cells.get("time_small")),
                fmt(cells.get("time_large")),
                fmt(cells.get("pops_small")),
                fmt(cells.get("pops_large")),
                fmt(cells.get("gen_small")),
                fmt(cells.get("gen_large")),
                "+".join(str(c) for c in counts),
            ]
        )
    report.notes.append(note)
    return report


def run_fig6a(
    *,
    scale: float = 0.25,
    queries_per_point: int = 3,
    keyword_range: Sequence[int] = (2, 3, 4, 5, 6, 7),
    seed: int = 600,
) -> Report:
    return _ratio_sweep(
        experiment="FIG6a",
        title="MI-Backward vs SI-Backward time ratio by #keywords",
        slow="mi-backward",
        fast="si-backward",
        scale=scale,
        queries_per_point=queries_per_point,
        keyword_range=keyword_range,
        result_size=5,
        seed=seed,
        note=(
            "paper: SI wins by ~an order of magnitude except 2-keyword "
            "small-origin queries (marginal win); nodes-explored ratio "
            "tracks the time ratio"
        ),
    )


def run_fig6b(
    *,
    scale: float = 1.0,
    queries_per_point: int = 3,
    keyword_range: Sequence[int] = (2, 3, 4, 5, 6, 7),
    seed: int = 700,
) -> Report:
    return _ratio_sweep(
        experiment="FIG6b",
        title="SI-Backward vs Bidirectional time ratio by #keywords",
        slow="si-backward",
        fast="bidirectional",
        scale=scale,
        queries_per_point=queries_per_point,
        keyword_range=keyword_range,
        result_size=5,
        seed=seed,
        note=(
            "paper: Bidirectional wins by a large margin (up to ~64x), "
            "nodes-explored ratios about 2x the time ratios"
        ),
    )


def run_fig6c(
    *,
    scale: float = 1.0,
    queries_per_point: int = 3,
    seed: int = 800,
) -> Report:
    """SI/Bidirectional by origin-band combination (4 keywords, size 3)."""
    bench = build_bench("dblp", scale)
    report = Report(
        experiment="FIG6c",
        title="SI-Backward vs Bidirectional by origin-size category",
        headers=[
            "combo",
            "bands",
            "out-time ratio",
            "nodes-expl ratio",
            "gen-time ratio",
            "queries",
        ],
    )
    for offset, (label, combo) in enumerate(FIG6C_COMBOS):
        rng = workload_rng(seed + offset * 31)
        time_ratios: list[float] = []
        pop_ratios: list[float] = []
        gen_ratios: list[float] = []
        for _ in range(queries_per_point):
            query = bench.generator.sample_query(
                rng, n_keywords=4, result_size=3, band_combo=combo
            )
            if query is None:
                continue
            _, points = run_measured(
                bench,
                query.keywords,
                ("si-backward", "bidirectional"),
                result_size=3,
            )
            si = points.get("si-backward")
            bi = points.get("bidirectional")
            if si is None or bi is None:
                continue
            ratio_t = safe_ratio(si.out_time, bi.out_time)
            ratio_p = safe_ratio(si.out_pops, bi.out_pops)
            ratio_g = safe_ratio(si.gen_time, bi.gen_time)
            if ratio_t is not None:
                time_ratios.append(ratio_t)
            if ratio_p is not None:
                pop_ratios.append(ratio_p)
            if ratio_g is not None:
                gen_ratios.append(ratio_g)
        report.rows.append(
            [
                label,
                "(" + ",".join(combo) + ")",
                fmt(geomean(time_ratios)),
                fmt(geomean(pop_ratios)),
                fmt(geomean(gen_ratios)),
                str(len(time_ratios)),
            ]
        )
    report.notes.append(
        "paper: Bidirectional outperforms SI in all categories and the "
        "speedup grows with origin-size skew — largest for (T,T,T,L), "
        "smallest for (M,M,M,M) and (M,L,L,L)"
    )
    return report
