"""Schema validation: tables, columns, foreign keys."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.relational.schema import ForeignKey, Schema, Table


class TestTable:
    def test_basic(self):
        t = Table("paper", ("id", "title"), text_columns=("title",))
        assert t.pk == "id"
        assert t.has_column("title")
        assert not t.has_column("year")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", ("id",))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", ("id", "id"))

    def test_pk_must_be_column(self):
        with pytest.raises(SchemaError):
            Table("t", ("a",), pk="id")

    def test_text_columns_must_exist(self):
        with pytest.raises(UnknownColumnError):
            Table("t", ("id",), text_columns=("body",))


class TestForeignKey:
    def test_weight_default(self):
        fk = ForeignKey("writes", "author_id", "author")
        assert fk.weight == 1.0
        assert fk.ref_column == "id"

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", "b", "c", weight=0.0)


def two_table_schema() -> Schema:
    return Schema(
        tables=(
            Table("author", ("id", "name")),
            Table("paper", ("id", "author_id")),
        ),
        foreign_keys=(ForeignKey("paper", "author_id", "author"),),
    )


class TestSchema:
    def test_lookup(self):
        schema = two_table_schema()
        assert schema.table("author").name == "author"
        assert schema.has_table("paper")
        assert not schema.has_table("movie")
        assert schema.table_names() == ("author", "paper")

    def test_unknown_table_raises(self):
        schema = two_table_schema()
        with pytest.raises(UnknownTableError):
            schema.table("movie")

    def test_duplicate_table_rejected(self):
        with pytest.raises(SchemaError):
            Schema(tables=(Table("a", ("id",)), Table("a", ("id",))))

    def test_fk_source_column_must_exist(self):
        with pytest.raises(UnknownColumnError):
            Schema(
                tables=(Table("a", ("id",)), Table("b", ("id",))),
                foreign_keys=(ForeignKey("b", "a_id", "a"),),
            )

    def test_fk_must_reference_pk(self):
        with pytest.raises(SchemaError):
            Schema(
                tables=(Table("a", ("id", "other")), Table("b", ("id", "a_id"))),
                foreign_keys=(ForeignKey("b", "a_id", "a", ref_column="other"),),
            )

    def test_fk_navigation(self):
        schema = two_table_schema()
        assert [fk.column for fk in schema.fks_from("paper")] == ["author_id"]
        assert [fk.table for fk in schema.fks_to("author")] == ["paper"]
        assert list(schema.fks_from("author")) == []

    def test_adjacent_tables(self):
        schema = two_table_schema()
        assert schema.adjacent_tables("author") == {"paper"}
        assert schema.adjacent_tables("paper") == {"author"}

    def test_joins_between(self):
        schema = two_table_schema()
        assert len(schema.joins_between("author", "paper")) == 1
        assert len(schema.joins_between("paper", "author")) == 1
