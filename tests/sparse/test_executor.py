"""CN execution: indexed nested-loop joins, distinct-tuple trees."""

import itertools

import pytest

from repro.sparse.candidate_networks import (
    CandidateNetwork,
    CNNode,
    enumerate_candidate_networks,
)
from repro.sparse.executor import CNExecutor
from repro.sparse.tuple_sets import TupleSets

from tests.conftest import TOY_SCHEMA


@pytest.fixture
def setup(toy_db):
    toy_db.build_join_indexes()
    tuple_sets = TupleSets(toy_db, ("gray", "transaction"))
    return toy_db, tuple_sets


def author_writes_paper_cn():
    fk_author = next(
        fk for fk in TOY_SCHEMA.foreign_keys if fk.column == "author_id"
    )
    fk_paper = next(fk for fk in TOY_SCHEMA.foreign_keys if fk.column == "paper_id")
    return CandidateNetwork(
        nodes=(
            CNNode("author", frozenset({"gray"})),
            CNNode("writes", frozenset()),
            CNNode("paper", frozenset({"transaction"})),
        ),
        edges=((1, 0, fk_author), (1, 2, fk_paper)),
    )


class TestExecute:
    def test_author_paper_join(self, setup):
        db, tuple_sets = setup
        executor = CNExecutor(db, tuple_sets)
        results = executor.execute(author_writes_paper_cn())
        # Gray wrote papers 1 and 4, both matching 'transaction'.
        row_sets = {tree.row_set() for tree in results}
        assert frozenset({("author", 1), ("writes", 1), ("paper", 1)}) in row_sets
        assert frozenset({("author", 1), ("writes", 4), ("paper", 4)}) in row_sets
        assert len(results) == 2

    def test_matches_brute_force(self, setup):
        """Oracle: enumerate all (author, writes, paper) triples."""
        db, tuple_sets = setup
        executor = CNExecutor(db, tuple_sets)
        got = {tree.row_set() for tree in executor.execute(author_writes_paper_cn())}

        expected = set()
        for author, writes, paper in itertools.product(
            db.rows("author"), db.rows("writes"), db.rows("paper")
        ):
            if writes["author_id"] != author["id"]:
                continue
            if writes["paper_id"] != paper["id"]:
                continue
            if tuple_sets.matched("author", author["id"]) != {"gray"}:
                continue
            if tuple_sets.matched("paper", paper["id"]) != {"transaction"}:
                continue
            expected.add(
                frozenset(
                    {
                        ("author", author["id"]),
                        ("writes", writes["id"]),
                        ("paper", paper["id"]),
                    }
                )
            )
        assert got == expected

    def test_limit(self, setup):
        db, tuple_sets = setup
        executor = CNExecutor(db, tuple_sets)
        results = executor.execute(author_writes_paper_cn(), limit=1)
        assert len(results) == 1

    def test_distinct_tuples_enforced(self, toy_db):
        # paper -cites- paper with the same keyword on both sides: a
        # tuple must not join with itself.
        toy_db.build_join_indexes()
        tuple_sets = TupleSets(toy_db, ("transaction",))
        citing_fk = next(
            fk for fk in TOY_SCHEMA.foreign_keys if fk.column == "citing_id"
        )
        cited_fk = next(
            fk for fk in TOY_SCHEMA.foreign_keys if fk.column == "cited_id"
        )
        cn = CandidateNetwork(
            nodes=(
                CNNode("paper", frozenset({"transaction"})),
                CNNode("cites", frozenset()),
                CNNode("paper", frozenset({"transaction"})),
            ),
            edges=((1, 0, citing_fk), (1, 2, cited_fk)),
        )
        executor = CNExecutor(toy_db, tuple_sets)
        for tree in executor.execute(cn):
            papers = [pk for table, pk in tree.rows if table == "paper"]
            assert len(set(papers)) == len(papers)

    def test_single_node_cn(self, setup):
        db, tuple_sets = setup
        cn = CandidateNetwork(
            nodes=(CNNode("paper", frozenset({"transaction"})),), edges=()
        )
        executor = CNExecutor(db, tuple_sets)
        results = executor.execute(cn)
        assert {tree.rows[0][1] for tree in results} == {1, 4}

    def test_rows_scanned_counter(self, setup):
        db, tuple_sets = setup
        executor = CNExecutor(db, tuple_sets)
        executor.execute(author_writes_paper_cn())
        assert executor.rows_scanned > 0

    def test_scores_prefer_fewer_joins(self, setup):
        db, tuple_sets = setup
        single = CandidateNetwork(
            nodes=(CNNode("paper", frozenset({"transaction"})),), edges=()
        )
        executor = CNExecutor(db, tuple_sets)
        small = executor.execute(single)[0]
        big = executor.execute(author_writes_paper_cn())[0]
        assert small.score() > big.score()

    def test_graph_nodes_mapping(self, setup, toy_engine):
        db, tuple_sets = setup
        executor = CNExecutor(db, tuple_sets)
        tree = executor.execute(author_writes_paper_cn())[0]
        nodes = tree.graph_nodes(toy_engine.graph)
        assert len(nodes) == 3
