"""RP: recall/precision experiments (paper Section 5.7).

For a generated workload, compare each algorithm's output ranking
against the ground-truth relevant set.  The paper reports recall close
to 100% with equally high precision at (near) full recall for both
MI-Backward and Bidirectional — "almost all relevant answers were found
before any irrelevant answer".
"""

from __future__ import annotations

from repro.core.params import SearchParams
from repro.experiments.common import (
    Report,
    build_bench,
    fmt,
    workload_rng,
)
from repro.workload.metrics import connection_recall, precision_at_full_coverage
from repro.workload.relevance import relevant_answers

__all__ = ["run_recall_precision"]


def run_recall_precision(
    *,
    scale: float = 0.4,
    n_queries: int = 8,
    result_size: int = 4,
    seed: int = 900,
    algorithms: tuple[str, ...] = ("bidirectional", "mi-backward", "si-backward"),
) -> Report:
    bench = build_bench("dblp", scale)
    report = Report(
        experiment="RP",
        title="Recall / precision against ground-truth relevant answers",
        headers=[
            "algorithm",
            "mean recall",
            "min recall",
            "mean prec@full-recall",
            "full recall reached",
            "queries",
        ],
    )
    rng = workload_rng(seed)
    queries = []
    while len(queries) < n_queries:
        n_keywords = 2 + len(queries) % 3
        query = bench.generator.sample_query(
            rng, n_keywords=n_keywords, result_size=result_size
        )
        if query is None:
            break
        queries.append(query)

    # The paper lets the search stream until the relevant answers have
    # surfaced (its recall is measured over the full output, Section
    # 5.7); a wide top-k window plays that role here.
    params = SearchParams(max_results=5000)
    per_algorithm: dict[str, dict[str, list[float]]] = {
        algorithm: {"recall": [], "precision": [], "full": []}
        for algorithm in algorithms
    }
    usable = 0
    for query in queries:
        _, keyword_sets = bench.engine.resolve(list(query.keywords))
        # Tie-invariant relevance (see metrics.connection_key): the
        # single-iterator model keeps one tree per root among equally
        # short tie variants (paper Section 4.6), so exact-signature
        # matching would undercount.
        relevant = relevant_answers(
            bench.engine.graph,
            keyword_sets,
            max_tree_size=result_size,
            scorer=bench.engine.scorer,
        )
        if not relevant or len(relevant) > params.max_results:
            continue
        usable += 1
        for algorithm in algorithms:
            result = bench.engine.search(
                list(query.keywords), algorithm=algorithm, params=params
            )
            trees = result.trees()
            stats = per_algorithm[algorithm]
            stats["recall"].append(connection_recall(trees, relevant))
            precision = precision_at_full_coverage(trees, relevant)
            stats["full"].append(1.0 if precision is not None else 0.0)
            if precision is not None:
                stats["precision"].append(precision)

    for algorithm in algorithms:
        stats = per_algorithm[algorithm]
        recalls = stats["recall"]
        precisions = stats["precision"]
        report.rows.append(
            [
                algorithm,
                fmt(sum(recalls) / len(recalls)) if recalls else "-",
                fmt(min(recalls)) if recalls else "-",
                fmt(sum(precisions) / len(precisions)) if precisions else "-",
                f"{int(sum(stats['full']))}/{len(stats['full'])}",
                str(usable),
            ]
        )
    report.notes.append(
        "paper: recall close to 100% with equally high precision at near "
        "full recall, for both MI-Backward and Bidirectional"
    )
    return report
