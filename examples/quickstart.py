"""Quickstart: keyword search over a tiny bibliography.

Builds a five-table database by hand, turns it into a search graph with
PageRank prestige and a keyword index, then runs the three search
algorithms of the paper on the classic query ``gray transaction``
(Section 1: find the connection between an author and a topic).

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    ForeignKey,
    KeywordSearchEngine,
    Schema,
    Table,
    render_result,
)

SCHEMA = Schema(
    tables=(
        Table("author", ("id", "name"), text_columns=("name",)),
        Table("conference", ("id", "name"), text_columns=("name",)),
        Table("paper", ("id", "title", "conf_id"), text_columns=("title",)),
        Table("writes", ("id", "author_id", "paper_id")),
        Table("cites", ("id", "citing_id", "cited_id")),
    ),
    foreign_keys=(
        ForeignKey("paper", "conf_id", "conference"),
        ForeignKey("writes", "author_id", "author"),
        ForeignKey("writes", "paper_id", "paper"),
        ForeignKey("cites", "citing_id", "paper"),
        ForeignKey("cites", "cited_id", "paper"),
    ),
)


def build_database() -> Database:
    db = Database(SCHEMA)
    db.insert_many(
        "author",
        [
            {"id": 1, "name": "Jim Gray"},
            {"id": 2, "name": "Pat Selinger"},
            {"id": 3, "name": "Michael Stonebraker"},
        ],
    )
    db.insert_many(
        "conference",
        [
            {"id": 1, "name": "VLDB"},
            {"id": 2, "name": "SIGMOD"},
        ],
    )
    db.insert_many(
        "paper",
        [
            {"id": 1, "title": "The Transaction Concept", "conf_id": 1},
            {"id": 2, "title": "Access Path Selection", "conf_id": 2},
            {"id": 3, "title": "The Design of Postgres", "conf_id": 2},
            {"id": 4, "title": "Granularity of Locks", "conf_id": 1},
        ],
    )
    db.insert_many(
        "writes",
        [
            {"id": 1, "author_id": 1, "paper_id": 1},
            {"id": 2, "author_id": 2, "paper_id": 2},
            {"id": 3, "author_id": 3, "paper_id": 3},
            {"id": 4, "author_id": 1, "paper_id": 4},
        ],
    )
    db.insert_many(
        "cites",
        [
            {"id": 1, "citing_id": 2, "cited_id": 1},
            {"id": 2, "citing_id": 3, "cited_id": 1},
            {"id": 3, "citing_id": 3, "cited_id": 2},
        ],
    )
    return db


def main() -> None:
    db = build_database()
    engine = KeywordSearchEngine.from_database(db)

    print("graph:", engine.graph)
    print("origin sizes for 'gray transaction':",
          engine.origin_sizes("gray transaction"))
    print()

    for algorithm in ("bidirectional", "si-backward", "mi-backward"):
        result = engine.search("gray transaction", algorithm=algorithm, k=3)
        stats = result.stats
        print(
            f"{algorithm}: {len(result.answers)} answers, "
            f"{stats.nodes_explored} nodes explored, "
            f"{stats.nodes_touched} touched"
        )
    print()

    # Render the best bidirectional answers as trees.
    result = engine.search("gray transaction", k=3)
    print(render_result(result, engine.graph, limit=3))

    # Multi-word keywords use double quotes, as in the paper's DQ1.
    result = engine.search('"jim gray" selinger', k=1)
    print()
    print(render_result(result, engine.graph, limit=1))


if __name__ == "__main__":
    main()
