"""In-memory store: inserts, integrity, lookups, indexes."""

import pytest

from repro.errors import IntegrityError, UnknownColumnError
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, Schema, Table


@pytest.fixture
def schema() -> Schema:
    return Schema(
        tables=(
            Table("author", ("id", "name"), text_columns=("name",)),
            Table("paper", ("id", "title", "author_id")),
        ),
        foreign_keys=(ForeignKey("paper", "author_id", "author"),),
    )


@pytest.fixture
def db(schema) -> Database:
    return Database(schema)


class TestInsert:
    def test_roundtrip(self, db):
        pk = db.insert("author", {"id": 1, "name": "Gray"})
        assert pk == 1
        assert db.get("author", 1)["name"] == "Gray"
        assert db.count("author") == 1

    def test_missing_column_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("author", {"id": 1})

    def test_unknown_column_rejected(self, db):
        with pytest.raises(UnknownColumnError):
            db.insert("author", {"id": 1, "name": "x", "age": 7})

    def test_duplicate_pk_rejected(self, db):
        db.insert("author", {"id": 1, "name": "a"})
        with pytest.raises(IntegrityError):
            db.insert("author", {"id": 1, "name": "b"})

    def test_fk_enforced(self, db):
        with pytest.raises(IntegrityError):
            db.insert("paper", {"id": 1, "title": "t", "author_id": 42})

    def test_null_fk_allowed(self, db):
        db.insert("paper", {"id": 1, "title": "t", "author_id": None})
        assert db.count("paper") == 1

    def test_fk_enforcement_can_be_disabled(self, schema):
        db = Database(schema, enforce_fk=False)
        db.insert("paper", {"id": 1, "title": "t", "author_id": 42})
        assert db.count("paper") == 1

    def test_row_copied_on_insert(self, db):
        row = {"id": 1, "name": "a"}
        db.insert("author", row)
        row["name"] = "mutated"
        assert db.get("author", 1)["name"] == "a"

    def test_insert_many(self, db):
        pks = db.insert_many(
            "author", [{"id": i, "name": f"a{i}"} for i in range(3)]
        )
        assert pks == [0, 1, 2]


class TestReads:
    def test_rows_in_insertion_order(self, db):
        for i in (3, 1, 2):
            db.insert("author", {"id": i, "name": f"a{i}"})
        assert [r["id"] for r in db.rows("author")] == [3, 1, 2]

    def test_missing_row_raises(self, db):
        with pytest.raises(KeyError):
            db.get("author", 99)

    def test_has(self, db):
        db.insert("author", {"id": 1, "name": "a"})
        assert db.has("author", 1)
        assert not db.has("author", 2)

    def test_select_predicate(self, db):
        db.insert_many(
            "author", [{"id": i, "name": "x" if i % 2 else "y"} for i in range(4)]
        )
        assert len(list(db.select("author", lambda r: r["name"] == "x"))) == 2

    def test_total_rows(self, db):
        db.insert("author", {"id": 1, "name": "a"})
        db.insert("paper", {"id": 1, "title": "t", "author_id": 1})
        assert db.total_rows() == 2


class TestIndexes:
    def test_lookup_via_index(self, db):
        db.insert("author", {"id": 1, "name": "a"})
        db.insert_many(
            "paper",
            [{"id": i, "title": "t", "author_id": 1} for i in range(3)],
        )
        db.build_index("paper", "author_id")
        assert len(db.lookup("paper", "author_id", 1)) == 3
        assert db.lookup("paper", "author_id", 9) == []

    def test_lookup_without_index_scans(self, db):
        db.insert("author", {"id": 1, "name": "a"})
        db.insert("paper", {"id": 1, "title": "t", "author_id": 1})
        assert len(db.lookup("paper", "author_id", 1)) == 1

    def test_index_maintained_on_insert(self, db):
        db.insert("author", {"id": 1, "name": "a"})
        db.build_index("paper", "author_id")
        db.insert("paper", {"id": 1, "title": "t", "author_id": 1})
        assert len(db.lookup("paper", "author_id", 1)) == 1

    def test_build_index_idempotent(self, db):
        db.insert("author", {"id": 1, "name": "a"})
        first = db.build_index("author", "name")
        assert db.build_index("author", "name") is first

    def test_build_join_indexes(self, db):
        db.build_join_indexes()
        assert db.index("paper", "author_id") is not None
        assert db.index("author", "id") is not None

    def test_unknown_column_index_rejected(self, db):
        with pytest.raises(UnknownColumnError):
            db.build_index("author", "nope")
