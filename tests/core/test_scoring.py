"""Tree scoring: E, N, overall relevance (paper Section 2.3)."""

import pytest

from repro.core.scoring import Scorer, edge_score, overall_score

from tests.helpers import build_graph


class TestEdgeScore:
    def test_sums_per_keyword_path_scores(self):
        assert edge_score([1.0, 2.5, 0.0]) == pytest.approx(3.5)

    def test_empty_is_zero(self):
        assert edge_score([]) == 0.0


class TestOverallScore:
    def test_decreases_with_edge_score(self):
        # Larger E must rank strictly lower (Section 4.5 depends on it).
        scores = [overall_score(e, 1.0, 0.2) for e in (0.0, 1.0, 5.0, 50.0)]
        assert scores == sorted(scores, reverse=True)

    def test_increases_with_node_score(self):
        scores = [overall_score(1.0, n, 0.2) for n in (0.1, 0.5, 1.0, 2.0)]
        assert scores == sorted(scores)

    def test_lambda_zero_ignores_prestige(self):
        assert overall_score(1.0, 0.123, 0.0) == pytest.approx(0.5)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            overall_score(-1.0, 1.0, 0.2)
        with pytest.raises(ValueError):
            overall_score(1.0, -1.0, 0.2)


class TestScorer:
    def test_node_score_root_plus_leaves(self):
        g = build_graph(3, [(0, 1), (0, 2)], prestige=[0.5, 0.3, 0.2])
        scorer = Scorer(g, 0.2)
        tree = scorer.build_tree(0, [(0, 1), (0, 2)], [1.0, 1.0])
        assert tree.node_score == pytest.approx(0.5 + 0.3 + 0.2)

    def test_root_counted_once_in_single_node_tree(self):
        g = build_graph(2, [(0, 1)], prestige=[0.6, 0.4])
        scorer = Scorer(g, 0.2)
        tree = scorer.build_tree(0, [(0,)], [0.0])
        assert tree.node_score == pytest.approx(0.6)

    def test_internal_keyword_node_not_counted(self):
        # N sums the root and *leaf* nodes only (paper Section 2.3).
        g = build_graph(3, [(1, 0), (2, 1)], prestige=[0.5, 0.3, 0.2])
        scorer = Scorer(g, 0.2)
        tree = scorer.build_tree(0, [(0, 1), (0, 1, 2)], [1.0, 2.0])
        assert tree.node_score == pytest.approx(0.5 + 0.2)

    def test_build_tree_validates_roots(self):
        g = build_graph(2, [(0, 1)])
        scorer = Scorer(g, 0.2)
        with pytest.raises(ValueError):
            scorer.build_tree(0, [(1, 0)], [1.0])
        with pytest.raises(ValueError):
            scorer.build_tree(0, [(0, 1)], [1.0, 2.0])

    def test_score_formula(self):
        g = build_graph(3, [(0, 1), (0, 2)], prestige=[0.5, 0.3, 0.2])
        scorer = Scorer(g, lam=0.5)
        tree = scorer.build_tree(0, [(0, 1), (0, 2)], [1.0, 2.0])
        assert tree.edge_score == pytest.approx(3.0)
        assert tree.score == pytest.approx((1.0 ** 0.5) / 4.0)

    def test_rejects_negative_lambda(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            Scorer(g, lam=-0.2)


class TestBounds:
    def test_node_score_upper_bound(self):
        g = build_graph(3, [(0, 1), (0, 2)], prestige=[0.5, 0.3, 0.2])
        scorer = Scorer(g, 0.2)
        assert scorer.node_score_upper_bound(2) == pytest.approx(0.5 * 3)

    def test_score_upper_bound_dominates_real_trees(self):
        g = build_graph(3, [(0, 1), (0, 2)], prestige=[0.5, 0.3, 0.2])
        scorer = Scorer(g, 0.2)
        tree = scorer.build_tree(0, [(0, 1), (0, 2)], [1.0, 1.0])
        bound = scorer.score_upper_bound(tree.edge_score, 2)
        assert bound >= tree.score

    def test_infinite_edge_bound_gives_zero(self):
        g = build_graph(2, [(0, 1)])
        scorer = Scorer(g, 0.2)
        assert scorer.score_upper_bound(float("inf"), 3) == 0.0
