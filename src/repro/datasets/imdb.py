"""Synthetic IMDB-shaped movie database (substrate S14).

Persons, movies, genre hub nodes, and ``acts``/``directs`` link tuples.
The frequency stress comes from very common first names ("John in the
IMDB database", paper Section 4.1) and from a handful of genres each
referenced by a large fraction of movies (hub fan-in).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.names import NamePool
from repro.datasets.vocab import make_vocabulary
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, Schema, Table

__all__ = ["ImdbConfig", "IMDB_SCHEMA", "make_imdb"]

GENRES: tuple[str, ...] = (
    "drama", "comedy", "action", "thriller", "romance", "horror",
    "documentary", "animation", "western", "noir",
)

MOVIE_WORDS: tuple[str, ...] = (
    "matrix", "return", "night", "day", "love", "dark", "city", "king",
    "star", "war", "story", "last", "first", "man", "woman", "ghost",
    "dream", "shadow", "fire", "ice", "blood", "gold", "river", "mountain",
    "island", "secret", "lost", "found", "broken", "silent", "midnight",
    "summer", "winter", "heart", "soul", "mind", "game", "code", "edge",
)

IMDB_SCHEMA = Schema(
    tables=(
        Table("person", ("id", "name"), text_columns=("name",)),
        Table("genre", ("id", "name"), text_columns=("name",)),
        Table("movie", ("id", "title", "year", "genre_id"), text_columns=("title",)),
        Table("acts", ("id", "person_id", "movie_id", "role"), text_columns=("role",)),
        Table("directs", ("id", "person_id", "movie_id")),
    ),
    foreign_keys=(
        ForeignKey("movie", "genre_id", "genre"),
        ForeignKey("acts", "person_id", "person"),
        ForeignKey("acts", "movie_id", "movie"),
        ForeignKey("directs", "person_id", "person"),
        ForeignKey("directs", "movie_id", "movie"),
    ),
)

ROLE_WORDS: tuple[str, ...] = (
    "thomas", "neo", "detective", "doctor", "captain", "agent", "professor",
    "mother", "father", "stranger", "king", "queen", "soldier", "pilot",
)


@dataclass(frozen=True)
class ImdbConfig:
    """Size knobs for the generated movie database."""

    n_persons: int = 300
    n_movies: int = 500
    n_genres: int = 8
    max_cast: int = 4
    vocabulary_size: int = 200
    seed: int = 11

    def scaled(self, factor: float) -> "ImdbConfig":
        return ImdbConfig(
            n_persons=max(10, int(self.n_persons * factor)),
            n_movies=max(20, int(self.n_movies * factor)),
            n_genres=max(3, min(len(GENRES), int(self.n_genres * min(factor, 1.5)))),
            max_cast=self.max_cast,
            vocabulary_size=max(40, int(self.vocabulary_size * factor)),
            seed=self.seed,
        )


def make_imdb(config: ImdbConfig = ImdbConfig()) -> Database:
    """Generate a deterministic IMDB-like database for ``config``."""
    rng = random.Random(config.seed)
    vocab = make_vocabulary(config.vocabulary_size, head=MOVIE_WORDS, tail_prefix="reel")
    names = NamePool(rare_last_fraction=0.3)
    db = Database(IMDB_SCHEMA)

    for genre_id in range(1, config.n_genres + 1):
        db.insert("genre", {"id": genre_id, "name": GENRES[genre_id - 1]})

    for person_id in range(1, config.n_persons + 1):
        db.insert("person", {"id": person_id, "name": names.person(rng)})

    genre_weights = [1.0 / rank for rank in range(1, config.n_genres + 1)]
    fame = [1] * (config.n_persons + 1)  # preferential casting

    acts_id = 0
    directs_id = 0
    for movie_id in range(1, config.n_movies + 1):
        db.insert(
            "movie",
            {
                "id": movie_id,
                "title": vocab.phrase(rng, 1, 4).title(),
                "year": rng.randint(1950, 2005),
                "genre_id": rng.choices(
                    range(1, config.n_genres + 1), weights=genre_weights
                )[0],
            },
        )
        cast_size = rng.randint(1, config.max_cast)
        cast: set[int] = set()
        for _ in range(cast_size):
            person_id = rng.choices(
                range(1, config.n_persons + 1), weights=fame[1:]
            )[0]
            if person_id in cast:
                continue
            cast.add(person_id)
            fame[person_id] += 2
            acts_id += 1
            db.insert(
                "acts",
                {
                    "id": acts_id,
                    "person_id": person_id,
                    "movie_id": movie_id,
                    "role": rng.choice(ROLE_WORDS).title(),
                },
            )
        director = rng.choices(range(1, config.n_persons + 1), weights=fame[1:])[0]
        directs_id += 1
        db.insert(
            "directs",
            {"id": directs_id, "person_id": director, "movie_id": movie_id},
        )
    return db
