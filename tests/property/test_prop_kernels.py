"""Property tests: the kernel-backend parity contract.

Three pinned guarantees for the batched expansion engines:

1. **Kernel bit-parity** — for a fixed batch size, every kernel
   backend (``scalar``, ``vectorized``, and ``numba`` where available)
   releases the *identical* answer stream: same signatures, same
   scores, same order, same stats.  The scalar backend computes
   candidates with plain python loops and the vectorized one with
   numpy array ops; candidates are produced in one canonical
   edge-major order and applied by shared scalar code, so nothing may
   diverge — not even a ULP.

2. **MI tri-backend parity** — MI-Backward keeps its per-settle
   schedule under every backend (the CSR fast path only swaps the
   in-edge scan), so there ``python`` joins the bit-parity class too,
   including every stat counter.

3. **Cancelled kernel runs release a certified prefix** — the batched
   loops consume the token once per batch but must preserve the
   partial-results contract: stopping after any tick leaves a prefix
   of the full run's answer stream, and no more pops than the granted
   ticks.

Batch-size *changes* are expressly allowed to change SI/Bidirectional
results (pop order shifts, so tie decompositions and emission
granularity shift — see ``docs/PERFORMANCE.md``); that is why parity
is always asserted at one fixed batch size.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backward_mi import BackwardExpandingSearch
from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.cancellation import CancellationToken
from repro.core.kernels import available_backends
from repro.core.params import SearchParams
from repro.graph.digraph import DataGraph

#: Kernel backends runnable here (numba joins when importable).
KERNEL_ARMS = [b for b in available_backends() if b != "python"]


@st.composite
def search_cases(draw):
    n = draw(st.integers(min_value=3, max_value=14))
    edge_candidates = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.2, max_value=4.0, allow_nan=False),
            ),
            min_size=n - 1,
            max_size=3 * n,
        )
    )
    edges = {}
    for u, v, w in edge_candidates:
        if u != v and (u, v) not in edges:
            edges[(u, v)] = w
    k = draw(st.integers(min_value=1, max_value=3))
    keyword_sets = [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=3,
                )
            )
        )
        for _ in range(k)
    ]
    return n, edges, keyword_sets


def build_graph_from(n, edges):
    dg = DataGraph()
    for i in range(n):
        dg.add_node(f"n{i}")
    for (u, v), w in edges.items():
        dg.add_edge(u, v, w)
    return dg.freeze()


def _run(cls, graph, keyword_sets, backend, batch, token=None):
    params = SearchParams(
        max_results=50,
        dmax=12,
        expansion_backend=backend,
        expansion_batch=batch,
        cancel_check_interval=max(1, batch),
    )
    keywords = tuple(f"k{i}" for i in range(len(keyword_sets)))
    return cls(graph, keywords, keyword_sets, params=params, token=token).run()


def _fingerprint(result):
    """Everything parity covers: answers (order + exact scores), stats,
    and the completion flag."""
    return (
        result.signatures(),
        result.scores(),
        result.complete,
        result.stats.nodes_explored,
        result.stats.nodes_touched,
        result.stats.edges_explored,
        result.stats.answers_generated,
        result.stats.duplicates_discarded,
        result.stats.answers_output,
    )


@pytest.mark.parametrize(
    "cls", [SingleIteratorBackwardSearch, BidirectionalSearch]
)
@given(case=search_cases(), batch=st.sampled_from([1, 2, 7, 32]))
@settings(max_examples=40, deadline=None)
def test_kernel_backends_bit_identical(cls, case, batch):
    n, edges, keyword_sets = case
    graph = build_graph_from(n, edges)
    reference = _fingerprint(
        _run(cls, graph, keyword_sets, "scalar", batch)
    )
    for arm in KERNEL_ARMS:
        if arm == "scalar":
            continue
        assert _fingerprint(_run(cls, graph, keyword_sets, arm, batch)) == (
            reference
        ), f"{arm} diverged from scalar at batch={batch}"


@given(case=search_cases())
@settings(max_examples=40, deadline=None)
def test_mi_backends_bit_identical_including_python(case):
    """MI keeps its schedule under every backend, so released answers
    and exploration counters match the python loop bit for bit.  The
    one sanctioned difference: kernel backends run the emit gate, which
    prunes provably-unreleasable trees *before* they are generated, so
    ``answers_generated``/``duplicates_discarded`` may only shrink."""
    n, edges, keyword_sets = case
    graph = build_graph_from(n, edges)
    py = _run(BackwardExpandingSearch, graph, keyword_sets, "python", 0)
    kernel_runs = {
        arm: _run(BackwardExpandingSearch, graph, keyword_sets, arm, 0)
        for arm in KERNEL_ARMS
    }
    for arm, run in kernel_runs.items():
        assert run.signatures() == py.signatures(), arm
        assert run.scores() == py.scores(), arm
        assert run.complete == py.complete, arm
        assert run.stats.nodes_explored == py.stats.nodes_explored, arm
        assert run.stats.nodes_touched == py.stats.nodes_touched, arm
        assert run.stats.edges_explored == py.stats.edges_explored, arm
        assert run.stats.answers_output == py.stats.answers_output, arm
        assert run.stats.answers_generated <= py.stats.answers_generated, arm
        assert (
            run.stats.duplicates_discarded <= py.stats.duplicates_discarded
        ), arm
    # Among themselves the kernel backends stay fully bit-identical
    # (same gate, same schedule, same arithmetic).
    reference = _fingerprint(kernel_runs["scalar"])
    for arm, run in kernel_runs.items():
        assert _fingerprint(run) == reference, arm


@pytest.mark.parametrize(
    "cls", [SingleIteratorBackwardSearch, BidirectionalSearch]
)
@given(
    case=search_cases(),
    batch=st.sampled_from([1, 3, 8, 32]),
    cancel_after=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=40, deadline=None)
def test_cancelled_kernel_run_is_prefix(cls, case, batch, cancel_after):
    n, edges, keyword_sets = case
    graph = build_graph_from(n, edges)
    full = _run(cls, graph, keyword_sets, "vectorized", batch)
    token = CancellationToken(cancel_at_tick=cancel_after, check_every=1)
    part = _run(cls, graph, keyword_sets, "vectorized", batch, token=token)

    if part.complete:
        assert part.signatures() == full.signatures()
        assert part.scores() == full.scores()
    else:
        assert part.cancel_reason == "cancelled"
        prefix = len(part.answers)
        assert part.signatures() == full.signatures()[:prefix]
        assert part.scores() == full.scores()[:prefix]
        # tick_many grants exactly the remaining budget: the batched
        # loop may not pop past the tick the token fires on.
        assert part.stats.nodes_explored <= cancel_after
