"""Edge-type constraints and prioritization (paper Section 1).

"Our prioritization mechanism can be extended to implement other useful
features.  For example, we can enforce constraints using edge types to
restrict search to specified search paths, or to prioritize certain
paths over others."

An :class:`EdgePolicy` maps each search-graph edge — identified by the
*table types* of its endpoints and its direction — to a weight
multiplier, or drops it entirely.  Applying a policy produces a new
:class:`~repro.graph.searchgraph.SearchGraph` view sharing node
metadata and prestige, so every algorithm gains type constraints with
no changes: restricting to authorship paths, banning citation hops, or
up-weighting (de-prioritizing) hub traversals are all one-liners.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.graph.searchgraph import SearchGraph

__all__ = ["EdgePolicy", "apply_edge_policy"]

#: (src_table, dst_table, is_forward) -> multiplier; None drops the edge.
PolicyFn = Callable[[Optional[str], Optional[str], bool], Optional[float]]


class EdgePolicy:
    """Declarative edge-type policy.

    Rules are looked up by ``(src_table, dst_table)``; ``"*"`` acts as a
    wildcard on either side.  A rule value is a weight multiplier
    (``1.0`` keeps the edge as is, larger values de-prioritize it) or
    ``None`` to forbid the edge.  The most specific rule wins:
    exact pair, then ``(src, "*")``, then ``("*", dst)``, then the
    default.

    Examples
    --------
    Restrict search to authorship connections on the DBLP schema::

        policy = EdgePolicy(default=None, rules={
            ("writes", "author"): 1.0,
            ("author", "writes"): 1.0,
            ("writes", "paper"): 1.0,
            ("paper", "writes"): 1.0,
        })

    Penalize (but allow) hops through citation links::

        policy = EdgePolicy(rules={("cites", "*"): 3.0, ("*", "cites"): 3.0})
    """

    def __init__(
        self,
        *,
        rules: Optional[dict[tuple[str, str], Optional[float]]] = None,
        default: Optional[float] = 1.0,
        forward_only: bool = False,
    ) -> None:
        self.rules = dict(rules) if rules else {}
        for pair, multiplier in self.rules.items():
            if multiplier is not None and multiplier <= 0.0:
                raise ValueError(
                    f"multiplier for {pair} must be > 0 or None, got {multiplier!r}"
                )
        if default is not None and default <= 0.0:
            raise ValueError(f"default must be > 0 or None, got {default!r}")
        self.default = default
        self.forward_only = forward_only

    # ------------------------------------------------------------------
    def multiplier(
        self, src_table: Optional[str], dst_table: Optional[str], is_forward: bool
    ) -> Optional[float]:
        """Effective multiplier for an edge, or None to drop it."""
        if self.forward_only and not is_forward:
            return None
        src = src_table if src_table is not None else "*"
        dst = dst_table if dst_table is not None else "*"
        for key in ((src, dst), (src, "*"), ("*", dst)):
            if key in self.rules:
                return self.rules[key]
        return self.default

    def __call__(
        self, src_table: Optional[str], dst_table: Optional[str], is_forward: bool
    ) -> Optional[float]:
        return self.multiplier(src_table, dst_table, is_forward)


def apply_edge_policy(graph: SearchGraph, policy: PolicyFn) -> SearchGraph:
    """A search-graph view with ``policy`` applied to every edge.

    Node ids, labels, tables, refs and prestige are shared; adjacency
    and the activation normalizers are rebuilt.  Dropping every edge of
    a node leaves it isolated (still a valid keyword match).
    """
    n = graph.num_nodes
    out_lists: list[list[tuple[int, float, bool]]] = [[] for _ in range(n)]
    in_lists: list[list[tuple[int, float, bool]]] = [[] for _ in range(n)]
    kept_forward = 0
    for u in range(n):
        u_table = graph.table(u)
        for v, w, fwd in graph.out_edges(u):
            multiplier = policy(u_table, graph.table(v), fwd)
            if multiplier is None:
                continue
            weight = w * multiplier
            out_lists[u].append((v, weight, fwd))
            in_lists[v].append((u, weight, fwd))
            if fwd:
                kept_forward += 1

    view = SearchGraph()
    view._out = tuple(tuple(edges) for edges in out_lists)
    view._in = tuple(tuple(edges) for edges in in_lists)
    view._labels = graph._labels
    view._tables = graph._tables
    view._refs = graph._refs
    view._num_forward_edges = kept_forward
    view._prestige = graph._prestige
    view._in_inv_weight_sum = tuple(
        sum(1.0 / w for _, w, _ in edges) for edges in view._in
    )
    view._out_inv_weight_sum = tuple(
        sum(1.0 / w for _, w, _ in edges) for edges in view._out
    )
    return view
