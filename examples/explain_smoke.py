"""Explain/accounting smoke: boot the HTTP tier, exercise the explain
and workload-analytics surfaces end to end.

The CI ``explain-smoke`` job runs this:

1. build a small engine, snapshot it, spin up a two-worker
   :class:`repro.ShardedQueryService`,
2. ``POST /search`` with ``explain=true`` and assert the response
   embeds a structured report (canonical section, seeds, score
   decompositions, cost vector),
3. fetch the same report back from ``GET /debug/explain/<request_id>``
   (and a 404 for an unknown id),
4. push a little repeated traffic and assert ``GET /debug/queries``
   shows the merged cross-replica fingerprint aggregates,
5. write the report to ``EXPLAIN_REPORT_OUT`` (when set) so CI uploads
   a real explain plan as an artifact.

Run:  python examples/explain_smoke.py
"""

import json
import os
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import KeywordSearchEngine, ShardedQueryService
from repro.cluster.http import make_server
from repro.datasets import DblpConfig, make_dblp
from repro.service.snapshot import save_engine


def _get(base: str, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(f"{base}{path}") as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _post(base: str, path: str, payload: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        engine = KeywordSearchEngine.from_database(
            make_dblp(DblpConfig().scaled(0.25))
        )
        snapshot = save_engine(Path(tmp) / "dblp.snap", engine)
        with ShardedQueryService(
            {"dblp": snapshot},
            num_workers=2,
            default_replicas=2,
            profiling=False,
        ) as cluster:
            cluster.warmup()
            server = make_server(cluster)
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            threading.Thread(target=server.serve_forever, daemon=True).start()

            # 1. explain=true embeds the report in the response.
            status, body = _post(
                base,
                "/search",
                {
                    "dataset": "dblp",
                    "query": "paper stream",
                    "k": 3,
                    "explain": True,
                    "request_id": "smoke-explain-1",
                },
            )
            assert status == 200, (status, body[:200])
            response = json.loads(body)
            report = (response.get("result") or {}).get("explain")
            assert isinstance(report, dict), "response carries no explain"
            canonical = report["canonical"]
            assert canonical["keywords"] == ["paper", "stream"]
            assert canonical["seeds"], "no seed resolution in the report"
            assert all(
                "decomposition" in answer for answer in canonical["answers"]
            )
            assert report["costs"].get("pops_in", 0) > 0, report["costs"]
            print(
                f"POST /search explain: {len(canonical['answers'])} answers, "
                f"costs {sorted(report['costs'])[:3]}..."
            )

            # 2. the same report is retained server-side.
            status, body = _get(base, "/debug/explain/smoke-explain-1")
            assert status == 200, status
            stored = json.loads(body)
            assert stored["canonical"] == canonical
            print("GET /debug/explain/<id>: report retained and identical")

            status, _ = _get(base, "/debug/explain/not-a-request")
            assert status == 404, status

            # 3. repeated traffic shows up as merged fingerprint rows.
            for _ in range(4):
                status, _ = _post(
                    base,
                    "/search",
                    {"dataset": "dblp", "query": "stream paper", "k": 3,
                     "use_cache": False},
                )
                assert status == 200, status
            status, body = _get(base, "/debug/queries")
            assert status == 200, status
            stats = json.loads(body)
            assert stats["total"] >= 4, stats["total"]
            entries = stats["entries"]
            assert entries, "no fingerprints sketched"
            top = entries[0]
            assert "|paper stream|" in top["key"], top["key"]
            assert top["costs"].get("pops_in", 0) > 0, top["costs"]
            print(
                f"GET /debug/queries: {stats['total']} sketched, top "
                f"{top['key']} x{top['count']}"
            )

            out = os.environ.get("EXPLAIN_REPORT_OUT")
            if out:
                Path(out).write_text(
                    json.dumps(report, indent=2), encoding="utf-8"
                )
                print(f"explain report written to {out}")

            server.shutdown()
            server.server_close()
    print("explain smoke OK")


if __name__ == "__main__":
    main()
