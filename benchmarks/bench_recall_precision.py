"""RP bench: Section 5.7 recall/precision.

Paper: recall close to 100% with equally high precision at near full
recall.  Asserted shape: mean recall >= 0.9 for Bidirectional and
MI-Backward.
"""

from repro.experiments.recall_precision import run_recall_precision

from conftest import as_float, run_report


def test_recall_precision(benchmark):
    report = run_report(benchmark, run_recall_precision)
    rows = {row[0]: row for row in report.rows}
    # Bidirectional/SI share the oracle's answer model: near-perfect
    # recall; MI's per-node combination cap trims a little.
    assert as_float(rows["bidirectional"][1]) >= 0.95
    assert as_float(rows["mi-backward"][1]) >= 0.8
