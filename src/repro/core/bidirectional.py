"""Bidirectional Expanding search (paper Section 4, Figure 3).

The paper's contribution.  Differences from Backward search (Section 4.2):

* all per-keyword-node backward iterators are merged into a single
  *incoming* iterator (queue ``Qin``);
* a concurrent *outgoing* iterator (queue ``Qout``) expands **forward**
  from potential answer roots — every node the incoming iterator has
  explored — toward keyword nodes, so a frequent keyword's huge origin
  set need never be expanded backward: roots discovered from the rare
  keywords connect to it going forward;
* both frontiers are prioritized by **spreading activation**
  (Section 4.3): nodes on small origin sets and in less bushy subtrees
  float to the top, and the two queues compete — whichever holds the
  globally highest-activation node is scheduled (Figure 3's switch).

Distance bookkeeping (``dist``/``sp``/ATTACH) lives in the shared
:class:`~repro.core.pathtable.PathTable`; activation (seeding, spreading,
ACTIVATE) in :class:`~repro.core.activation.ActivationTable`; emission,
duplicate discard and the Section 4.5 bounded top-k output in the
:class:`~repro.core.driver.BaseSearch` plumbing, all shared with the
baselines so measured differences come from the strategy alone.
"""

from __future__ import annotations

from math import inf
from typing import Optional, Sequence

from repro.core.activation import ActivationTable
from repro.core.answer import SearchResult
from repro.core.driver import BaseSearch, frontier_minima, nra_edge_bound
from repro.core.heaps import LazyMaxHeap
from repro.core.params import SearchParams
from repro.core.pathtable import PathTable
from repro.core.scoring import Scorer

__all__ = ["BidirectionalSearch"]


class BidirectionalSearch(BaseSearch):
    """Bidirectional expanding search with spreading activation."""

    algorithm = "bidirectional"

    def __init__(
        self,
        graph,
        keywords: Sequence[str],
        keyword_sets: Sequence[frozenset[int]],
        *,
        params: Optional[SearchParams] = None,
        scorer: Optional[Scorer] = None,
        token=None,
    ) -> None:
        super().__init__(
            graph, keywords, keyword_sets, params=params, scorer=scorer, token=token
        )
        self._qin = LazyMaxHeap()
        self._qout = LazyMaxHeap()
        self._xin: set[int] = set()
        self._xout: set[int] = set()
        self._depth: dict[int, int] = {}
        self._table = PathTable(graph, self.keyword_sets)
        self._act = ActivationTable(
            graph,
            self.keyword_sets,
            mu=self.params.mu,
            combine=self.params.activation_combine,
            on_activation_change=self._on_activation_change,
        )

    # ------------------------------------------------------------------
    # priority upkeep (ACTIVATE's "update priority if present in Q...")
    # ------------------------------------------------------------------
    def _on_activation_change(self, node: int) -> None:
        total = self._act.total(node)
        if node in self._qin:
            self._qin.push(node, total)
            self.stats.heap_ops += 1
        if node in self._qout:
            self._qout.push(node, total)
            self.stats.heap_ops += 1

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        from repro.core.kernels import resolve_backend

        backend = resolve_backend(self.params.expansion_backend)
        if backend != "python":
            from repro.core.kernels import run_bidi_batched

            return run_bidi_batched(self, backend)
        seeds = self._table.seed_all()
        self._act.seed_all()
        self._explain_side: Optional[bool] = None
        for node in sorted(seeds):
            self._depth[node] = 0
            self._qin.push(node, self._act.total(node))
            self.stats.touch()
            self.stats.heap_ops += 1

        while (self._qin or self._qout) and not self._done:
            if self._budget_exhausted() or self._cancelled():
                break
            pin = self._qin.peek_priority()
            pout = self._qout.peek_priority()
            # Figure 3's switch: expand whichever queue holds the node
            # with the highest activation (ties favour backward search,
            # which discovers the potential roots).
            incoming = pin is not None and (pout is None or pin >= pout)
            if self._explain_every and incoming is not self._explain_side:
                # Record only actual direction changes (with the balance
                # rule's inputs) — per-pop entries would flood the
                # bounded timeline with repeats.
                self._explain_side = incoming
                self.explain_note(
                    "switch",
                    rule="activation",
                    pin=pin,
                    pout=pout,
                    chose="in" if incoming else "out",
                )
            if incoming:
                self._expand_incoming()
            else:
                self._expand_outgoing()
            self._profile_tick()
            if self._should_flush():
                self._flush(self._edge_bound())
        if (
            not self._qin
            and not self._qout
            and not self._done
            and not self._stopped_by_cancel
            and not self._budget_exhausted()
        ):
            self._tie_sweep(
                sorted(
                    node
                    for node in self._table.seen_nodes()
                    if self._table.is_complete(node)
                ),
                self._table.build_paths,
                self._table.dist,
            )
        self.stats.cascade_touches += (
            self._table.cascade_touches + self._act.cascade_touches
        )
        return self._finish()

    def _frontier_sizes(self) -> dict[str, int]:
        return {"incoming": len(self._qin), "outgoing": len(self._qout)}

    # ------------------------------------------------------------------
    # incoming iterator (Figure 3 lines 6-14)
    # ------------------------------------------------------------------
    def _expand_incoming(self) -> None:
        v, _ = self._qin.pop()
        self._xin.add(v)
        self.stats.explore()
        self.stats.pops_in += 1
        self._pops_since_flush += 1

        if self._table.is_complete(v):
            self._emit_root(v)

        if self._depth[v] < self.params.dmax:
            depth = self._depth[v] + 1
            for u, w, _ in self.graph.in_edges(v):
                self.stats.explore_edge()
                completions = self._table.explore_edge(u, v, w)
                for node in completions:
                    self._emit_root(node)
                if u not in self._xin and u not in self._qin:
                    self._depth.setdefault(u, depth)
                    self._qin.push(u, self._act.total(u))
                    self.stats.touch()
                    self.stats.heap_ops += 1
            # Spread after the edges are registered so the ACTIVATE
            # cascade sees the freshly explored parent links.
            self._act.spread_backward(v, self._table_parents())

        # Every node explored backward is a potential answer root.
        if v not in self._xout and v not in self._qout:
            self._qout.push(v, self._act.total(v))
            self.stats.touch()
            self.stats.heap_ops += 1

    # ------------------------------------------------------------------
    # outgoing iterator (Figure 3 lines 15-23)
    # ------------------------------------------------------------------
    def _expand_outgoing(self) -> None:
        u, _ = self._qout.pop()
        self._xout.add(u)
        self.stats.explore()
        self.stats.pops_out += 1
        self._pops_since_flush += 1

        if self._table.is_complete(u):
            self._emit_root(u)

        if self._depth[u] < self.params.dmax:
            depth = self._depth[u] + 1
            for v, w, _ in self.graph.out_edges(u):
                self.stats.explore_edge()
                # Forward exploration: u may gain a (shorter) path to a
                # keyword *through* v — the payoff of forward search.
                completions = self._table.explore_edge(u, v, w)
                for node in completions:
                    self._emit_root(node)
                if v not in self._xout and v not in self._qout:
                    self._depth.setdefault(v, depth)
                    self._qout.push(v, self._act.total(v))
                    self.stats.touch()
                    self.stats.heap_ops += 1
            self._act.spread_forward(u, self._table_parents())

    # ------------------------------------------------------------------
    def _emit_root(self, root: int) -> None:
        paths, dists = self._table.build_paths(root)
        self._emit_tree(root, paths, dists)
        self._emit_tie_alternate(root, paths, self._table.dist)

    def _table_parents(self) -> dict[int, dict[int, float]]:
        return self._table.parents_map()

    # ------------------------------------------------------------------
    def _edge_bound(self) -> float:
        """Section 4.5: frontier minima over both queues, refined NRA-style
        over every seen-but-incomplete node."""
        ms = frontier_minima(
            self.k,
            [
                (node for node, _ in self._qin.items()),
                (node for node, _ in self._qout.items()),
            ],
            self._table.dist,
        )
        if all(m == inf for m in ms):
            return inf
        incomplete = (
            self._table.dist_vector(node)
            for node in self._table.seen_nodes()
            if not self._table.is_complete(node)
        )
        return nra_edge_bound(ms, incomplete)
