"""SparseSearch facade."""

import pytest

from repro.errors import EmptyQueryError
from repro.sparse.sparse_search import SparseSearch


class TestSearch:
    def test_finds_author_paper_connection(self, toy_db):
        sparse = SparseSearch(toy_db, max_cn_size=3)
        out = sparse.search("gray transaction")
        assert out.keywords == ("gray", "transaction")
        assert out.num_networks > 0
        row_sets = out.result_row_sets()
        assert frozenset({("author", 1), ("writes", 1), ("paper", 1)}) in row_sets

    def test_results_sorted_by_score(self, toy_db):
        sparse = SparseSearch(toy_db, max_cn_size=4)
        out = sparse.search("transaction vldb", k=None)
        scores = [tree.score() for tree in out.results]
        assert scores == sorted(scores, reverse=True)

    def test_top_k(self, toy_db):
        sparse = SparseSearch(toy_db, max_cn_size=4)
        out = sparse.search("transaction", k=2)
        assert len(out.results) <= 2

    def test_per_network_limit(self, toy_db):
        sparse = SparseSearch(toy_db, max_cn_size=3)
        capped = sparse.search("transaction", k=None, per_network_limit=1)
        full = sparse.search("transaction", k=None)
        assert len(capped.results) <= len(full.results)

    def test_timing_recorded(self, toy_db):
        sparse = SparseSearch(toy_db)
        out = sparse.search("gray transaction")
        assert out.enumerate_seconds >= 0.0
        assert out.execute_seconds >= 0.0
        assert out.elapsed == pytest.approx(
            out.enumerate_seconds + out.execute_seconds
        )

    def test_lower_bound_time_uses_relevant_size(self, toy_db):
        sparse = SparseSearch(toy_db, max_cn_size=6)
        small = sparse.lower_bound_time("gray transaction", relevant_size=2)
        large = sparse.lower_bound_time("gray transaction", relevant_size=4)
        assert small.num_networks <= large.num_networks

    def test_validation(self, toy_db):
        with pytest.raises(ValueError):
            SparseSearch(toy_db, max_cn_size=0)
        sparse = SparseSearch(toy_db)
        with pytest.raises(EmptyQueryError):
            sparse.search("   ")

    def test_agreement_with_graph_search(self, toy_db, toy_engine):
        """The Sparse result tuples appear among the graph answers'
        node sets (same connection found through both stacks)."""
        sparse = SparseSearch(toy_db, max_cn_size=3)
        sparse_out = sparse.search("gray transaction", k=None)
        graph_out = toy_engine.search("gray transaction", k=10)
        sparse_node_sets = {
            tree.graph_nodes(toy_engine.graph) for tree in sparse_out.results
        }
        graph_node_sets = set(graph_out.node_sets())
        assert sparse_node_sets & graph_node_sets
