"""merge_metrics: cluster aggregation equals a hand-merge of the parts."""

import numpy as np

from repro.cluster.metrics import merge_metrics
from repro.service.metrics import ServiceMetrics
from repro.telemetry.metrics import MetricsRegistry


def _worker_part(latencies, *, hits, misses, errors, cache, datasets):
    metrics = ServiceMetrics()
    for seconds in latencies:
        metrics.record_request("bidirectional", seconds, cached=False)
    for _ in range(hits):
        metrics.record_request("bidirectional", 0.0, cached=True)
    for error_type in errors:
        metrics.record_error("bidirectional", error_type)
    part = metrics.export(include_samples=True)
    # record_request(cached=False) already counted `misses`; align the
    # synthetic cache section with the counters.
    assert part["cache_misses"] == len(latencies)
    part["cache"] = cache
    part["datasets"] = datasets
    return part


def test_merge_equals_hand_merge():
    lat_a = [0.010, 0.020, 0.030, 0.500]
    lat_b = [0.001, 0.002, 0.003]
    part_a = _worker_part(
        lat_a,
        hits=3,
        misses=len(lat_a),
        errors=["KeywordNotFoundError"],
        cache={"size": 4, "capacity": 64, "ttl": None, "hits": 3, "misses": 4,
               "hit_rate": 3 / 7, "evictions": 1, "expirations": 0},
        datasets={"registered": ["alpha", "beta"], "built": ["alpha"],
                  "build_seconds": {"alpha": 0.5}},
    )
    part_b = _worker_part(
        lat_b,
        hits=1,
        misses=len(lat_b),
        errors=["KeywordNotFoundError", "UnknownDatasetError"],
        cache={"size": 2, "capacity": 64, "ttl": None, "hits": 1, "misses": 3,
               "hit_rate": 1 / 4, "evictions": 0, "expirations": 0},
        datasets={"registered": ["alpha"], "built": ["alpha"],
                  "build_seconds": {"alpha": 0.9}},
    )
    merged = merge_metrics([part_a, part_b])

    # Counters: plain sums.
    assert merged["requests_total"] == part_a["requests_total"] + part_b["requests_total"]
    assert merged["errors_total"] == 3
    assert merged["errors"] == {"KeywordNotFoundError": 2, "UnknownDatasetError": 1}

    # Hit rate: recomputed from summed numerators/denominators, not an
    # average of the per-worker rates.
    hits, misses = 3 + 1, len(lat_a) + len(lat_b)
    assert merged["cache_hits"] == hits
    assert merged["cache_misses"] == misses
    assert merged["cache_hit_rate"] == hits / (hits + misses)

    # Percentiles: exact over the concatenated samples.
    combined = lat_a + lat_b
    entry = merged["algorithms"]["bidirectional"]
    assert sorted(entry["latency_samples"]) == sorted(combined)
    assert entry["latency_count"] == len(combined)
    assert entry["latency_mean"] == sum(combined) / len(combined)
    for q in (50.0, 90.0, 99.0):
        assert entry[f"latency_p{q:g}"] == float(np.percentile(combined, q))
    # Sanity: the naive "average the p50s" answer differs, proving the
    # merge is over samples.
    naive = (part_a["algorithms"]["bidirectional"]["latency_p50"]
             + part_b["algorithms"]["bidirectional"]["latency_p50"]) / 2
    assert entry["latency_p50"] != naive

    # Cache section: summed counters, recomputed rate.
    assert merged["cache"]["hits"] == 4
    assert merged["cache"]["capacity"] == 128
    assert merged["cache"]["hit_rate"] == 4 / (4 + 7)

    # Datasets: union, slowest replica's build time.
    assert merged["datasets"]["registered"] == ["alpha", "beta"]
    assert merged["datasets"]["build_seconds"] == {"alpha": 0.9}


def test_merge_without_samples_yields_none_percentiles():
    metrics = ServiceMetrics()
    metrics.record_request("bidirectional", 0.01, cached=False)
    no_samples = metrics.export(include_samples=False)
    with_samples = metrics.export(include_samples=True)
    merged = merge_metrics([no_samples, with_samples])
    entry = merged["algorithms"]["bidirectional"]
    # One part lacks its reservoir: exact percentiles are impossible,
    # and the merge must say so rather than guess.
    assert entry["latency_p50"] is None
    assert entry["latency_samples"] is None
    assert entry["latency_count"] == 2
    assert entry["latency_mean"] == 0.01


def test_merge_tolerates_supervisor_only_parts():
    supervisor = ServiceMetrics()
    supervisor.record_error("bidirectional", "DeadlineExceededError")
    merged = merge_metrics([supervisor.export(include_samples=True)])
    assert merged["requests_total"] == 1
    assert merged["errors"] == {"DeadlineExceededError": 1}
    assert "cache" not in merged
    assert "datasets" not in merged
    assert merge_metrics([]) == {
        "requests_total": 0,
        "errors_total": 0,
        "errors": {},
        "cancellations": {
            "cancelled": 0,
            "deadline_exceeded": 0,
            "reclaimed_seconds": 0,
            "overrun_seconds": 0,
        },
        "cache_hits": 0,
        "cache_misses": 0,
        "cache_hit_rate": 0.0,
        "algorithms": {},
    }


def test_merge_heterogeneous_replicas_no_keyerror():
    # A worker mid-restart exports bare ServiceMetrics (no cache, no
    # datasets, no registry); a healthy replica exports everything.
    bare = ServiceMetrics().export(include_samples=True)
    registry = MetricsRegistry()
    full_metrics = ServiceMetrics(registry=registry)
    full_metrics.record_request("bidirectional", 0.01, cached=False)
    full = full_metrics.export(include_samples=True)
    full["cache"] = {"size": 1, "capacity": 8, "ttl": None, "hits": 0,
                     "misses": 1, "hit_rate": 0.0, "evictions": 0,
                     "expirations": 0}
    full["datasets"] = {"registered": ["alpha"], "built": ["alpha"],
                        "build_seconds": {}, "wal_seq": {"alpha": 3}}
    full["registry"] = registry.export()
    merged = merge_metrics([bare, full])
    assert merged["requests_total"] == 1
    assert merged["datasets"]["wal_seq"] == {"alpha": 3}
    assert "registry" in merged


def test_merge_wal_seq_is_max_per_dataset():
    def part(wal_seq):
        exported = ServiceMetrics().export(include_samples=True)
        exported["datasets"] = {
            "registered": ["alpha"],
            "built": [],
            "build_seconds": {},
            "wal_seq": wal_seq,
        }
        return exported

    merged = merge_metrics(
        [part({"alpha": 4, "beta": 1}), part({"alpha": 2, "beta": 7})]
    )
    # Replicas replay one shared log: the highest tip is the durable
    # truth, a lower number is a lagging replica, not a different log.
    assert merged["datasets"]["wal_seq"] == {"alpha": 4, "beta": 7}


def test_merge_wal_seq_absent_when_no_part_has_it():
    exported = ServiceMetrics().export(include_samples=True)
    exported["datasets"] = {"registered": [], "built": [], "build_seconds": {}}
    merged = merge_metrics([exported])
    assert "wal_seq" not in merged["datasets"]


def test_merge_registry_families_across_replicas():
    def part():
        registry = MetricsRegistry()
        metrics = ServiceMetrics(registry=registry)
        metrics.record_request("bidirectional", 0.01, cached=False)
        exported = metrics.export(include_samples=True)
        exported["registry"] = registry.export()
        return exported

    merged = merge_metrics([part(), part()])
    registry = merged["registry"]
    samples = registry["repro_requests_total"]["samples"]
    assert sum(sample["value"] for sample in samples) == 2
    latency = registry["repro_request_latency_seconds"]
    assert sum(sample["count"] for sample in latency["samples"]) == 2
