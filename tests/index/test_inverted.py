"""Inverted index: postings, relation-name matching, frequencies."""

from repro.index.inverted import InvertedIndex, build_index


class TestInvertedIndex:
    def test_add_text_and_lookup(self):
        idx = InvertedIndex()
        idx.add_text(1, "Transaction recovery")
        idx.add_text(2, "Transaction processing")
        assert idx.lookup("transaction") == {1, 2}
        assert idx.lookup("recovery") == {1}
        assert idx.lookup("TRANSACTION") == {1, 2}  # case-insensitive

    def test_unknown_term_empty(self):
        idx = InvertedIndex()
        assert idx.lookup("nothing") == frozenset()
        assert idx.frequency("nothing") == 0
        assert not idx.has_term("nothing")

    def test_add_term_normalizes(self):
        idx = InvertedIndex()
        idx.add_term(5, "  GrAy ")
        assert idx.lookup("gray") == {5}

    def test_relation_name_matches_all_tuples(self):
        # Paper Section 2.2: a keyword matching a relation name matches
        # every tuple of that relation.
        idx = InvertedIndex()
        idx.add_relation_node("paper", 1)
        idx.add_relation_node("paper", 2)
        idx.add_text(3, "a paper about papers")
        assert idx.lookup("paper") == {1, 2, 3}

    def test_frequency_counts_relation_matches(self):
        idx = InvertedIndex()
        idx.add_relation_node("conference", 1)
        idx.add_relation_node("conference", 2)
        assert idx.frequency("conference") == 2


class TestLookupMemoStaysCoherent:
    """Regression: the memoized lookup frozensets must be invalidated
    (or versioned) by adds — interleaving lookups and adds previously
    risked serving a stale snapshot of the postings."""

    def test_add_text_after_lookup_is_visible(self):
        idx = InvertedIndex()
        idx.add_text(1, "transaction recovery")
        assert idx.lookup("transaction") == {1}  # memoizes
        idx.add_text(2, "transaction processing")
        assert idx.lookup("transaction") == {1, 2}
        assert idx.frequency("transaction") == 2

    def test_add_term_after_lookup_is_visible(self):
        idx = InvertedIndex()
        idx.add_term(1, "gray")
        assert idx.lookup("gray") == {1}
        idx.add_term(9, "  GRAY ")  # normalization hits the same memo slot
        assert idx.lookup("gray") == {1, 9}

    def test_add_relation_node_after_lookup_is_visible(self):
        idx = InvertedIndex()
        idx.add_text(3, "a paper about graphs")
        assert idx.lookup("paper") == {3}
        idx.add_relation_node("paper", 7)
        assert idx.lookup("paper") == {3, 7}

    def test_interleaved_adds_and_lookups_match_reference(self):
        idx = InvertedIndex()
        reference: dict[str, set[int]] = {}
        script = [
            ("text", 1, "stream clustering"),
            ("lookup", "stream"),
            ("text", 2, "stream joins"),
            ("lookup", "stream"),
            ("term", 3, "stream"),
            ("lookup", "stream"),
            ("relation", "stream", 4),
            ("lookup", "stream"),
            ("text", 5, "clustering methods"),
            ("lookup", "clustering"),
        ]
        for step in script:
            if step[0] == "text":
                _, node, text = step
                idx.add_text(node, text)
                for term in text.split():
                    reference.setdefault(term, set()).add(node)
            elif step[0] == "term":
                _, node, term = step
                idx.add_term(node, term)
                reference.setdefault(term, set()).add(node)
            elif step[0] == "relation":
                _, relation, node = step
                idx.add_relation_node(relation, node)
                reference.setdefault(relation, set()).add(node)
            else:
                term = step[1]
                assert idx.lookup(term) == reference.get(term, set())

    def test_repeated_lookup_returns_same_object(self):
        # The point of the memo: no re-materialization per call.
        idx = InvertedIndex()
        idx.add_text(1, "alpha beta")
        first = idx.lookup("alpha")
        assert idx.lookup("alpha") is first

    def test_unknown_terms_are_not_memoized(self):
        idx = InvertedIndex()
        assert idx.lookup("nothing") == frozenset()
        assert idx._lookup_cache == {}
        idx.add_term(1, "nothing")
        assert idx.lookup("nothing") == {1}

    def test_terms_by_frequency_sorted(self):
        idx = InvertedIndex()
        for node in range(5):
            idx.add_text(node, "common")
        idx.add_text(0, "rare")
        ranked = idx.terms_by_frequency()
        assert ranked[0] == ("common", 5)
        assert ("rare", 1) in ranked

    def test_vocabulary_excludes_relation_only_terms(self):
        idx = InvertedIndex()
        idx.add_relation_node("paper", 1)
        idx.add_text(1, "text")
        assert set(idx.terms()) == {"text"}
        assert len(idx) == 1


class TestBuildIndex:
    def test_from_toy_database(self, toy_db, toy_engine):
        idx = toy_engine.index
        graph = toy_engine.graph
        gray_nodes = idx.lookup("gray")
        assert gray_nodes == {graph.node_by_ref("author", 1)}
        # 'transaction' appears in two paper titles.
        assert len(idx.lookup("transaction")) == 2
        # Relation name 'paper' matches all four paper tuples.
        assert len(idx.lookup("paper")) == 4
        # Relation name works even for tables without text columns.
        assert len(idx.lookup("writes")) == 4

    def test_text_columns_override(self, toy_db, toy_engine):
        idx = build_index(toy_db, toy_engine.graph, text_columns={"author": ("name",)})
        assert len(idx.lookup("gray")) == 1
        # Paper titles were not indexed under the override...
        assert idx.lookup("transaction") == frozenset()
        # ...but relation names still are.
        assert len(idx.lookup("paper")) == 4
