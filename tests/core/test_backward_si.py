"""SI-Backward specifics: distance ordering, single iterator."""

import pytest

from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.params import SearchParams

from tests.helpers import build_graph


class TestDistanceOrdering:
    def test_pops_in_nondecreasing_distance(self):
        g = build_graph(
            6, [(0, 5, 1.0), (1, 5, 2.0), (2, 1, 1.5), (3, 0, 4.0), (4, 3, 1.0)]
        )
        sets = [frozenset({5})]
        search = SingleIteratorBackwardSearch(
            g, ("x",), sets, params=SearchParams(max_results=100)
        )
        popped_priorities = []
        original_pop = search._queue.pop

        def spy_pop():
            item, priority = original_pop()
            popped_priorities.append(priority)
            return item, priority

        search._queue.pop = spy_pop
        search.run()
        cleaned = [p for p in popped_priorities]
        assert cleaned == sorted(cleaned)

    def test_each_node_explored_once(self):
        g = build_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sets = [frozenset({4})]
        result = SingleIteratorBackwardSearch(
            g, ("x",), sets, params=SearchParams(max_results=100)
        ).run()
        assert result.stats.nodes_explored <= g.num_nodes

    def test_no_forward_iterator(self):
        # SI must never find the between-keywords root that only forward
        # search discovers: 1 -> 0, 1 -> 2 with keywords {0} and {2}.
        g = build_graph(3, [(1, 0), (1, 2)])
        sets = [frozenset({0}), frozenset({2})]
        result = SingleIteratorBackwardSearch(
            g, ("a", "b"), sets, params=SearchParams(max_results=10)
        ).run()
        # Backward exploration still reaches node 1 via in-edge
        # relaxations of 0 and 2... through *backward* edges 0->1, 2->1
        # which exist in the search graph; so the answer IS found.  The
        # distinguishing fact is cost, covered by the bidirectional
        # tests; here we assert correctness only.
        assert result.answers
        assert result.best().tree.root == 1

    def test_distance_priority_updates_on_improvement(self):
        # Node 3 first reached at distance 3 via the chain, later at 1
        # via a direct edge; its queue priority must drop.
        g = build_graph(
            5, [(3, 2, 1.0), (2, 1, 1.0), (1, 0, 1.0), (3, 4, 1.0), (4, 0, 1.0)]
        )
        sets = [frozenset({0})]
        # Inspects the legacy PathTable after the run, so pin the
        # reference per-pop loop (batched backends keep dense state).
        search = SingleIteratorBackwardSearch(
            g,
            ("x",),
            sets,
            params=SearchParams(max_results=100, expansion_backend="python"),
        )
        result = search.run()
        # dist(3 -> 0): via 2,1 = 3 hops; via 4 = 2 hops; all weight-1
        # chains plus derived backward edges may shorten further; assert
        # the table holds the true shortest distance at exhaustion.
        from repro.core.exhaustive import keyword_distances

        dist, _ = keyword_distances(g, frozenset({0}))
        assert search._table.dist(3, 0) == pytest.approx(dist[3])

    def test_emits_when_complete_on_pop(self):
        g = build_graph(3, [(0, 1), (0, 2)])
        sets = [frozenset({1}), frozenset({2})]
        result = SingleIteratorBackwardSearch(
            g, ("a", "b"), sets, params=SearchParams(max_results=10)
        ).run()
        assert result.answers
        assert result.best().tree.root == 0
